package core

import (
	"testing"

	"lazypoline/internal/interpose"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
)

// TestNestedSignalsUnderInterposition layers Figure 3 twice: SIGUSR1's
// handler raises SIGUSR2, whose handler performs syscalls; every level
// is interposed and both sigreturn trampolines must unwind the selector
// stack in LIFO order.
func TestNestedSignalsUnderInterposition(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, `
	.equ MARK 0x7fef0000
	_start:
		mov64 rax, 13
		mov64 rdi, 10
		lea rsi, act1
		mov64 rdx, 0
		syscall
		mov64 rax, 13
		mov64 rdi, 12
		lea rsi, act2
		mov64 rdx, 0
		syscall
		mov64 rax, 39
		syscall
		mov rdi, rax
		mov64 rsi, 10
		mov64 rax, 62
		syscall
		; after both handlers unwound, syscalls must still be interposed
		mov64 rax, 186
		syscall
		mov64 rbx, MARK
		load rdi, [rbx]
		mov64 rax, 60
		syscall
	handler1:
		mov64 rax, 39        ; interposed getpid inside handler 1
		syscall
		mov rdi, rax
		mov64 rsi, 12
		mov64 rax, 62        ; raise SIGUSR2 (nested)
		syscall
		mov64 r14, MARK
		load r15, [r14]
		addi r15, 1
		store [r14], r15
		ret
	handler2:
		mov64 rax, 186       ; interposed gettid inside handler 2
		syscall
		mov64 r14, MARK
		load r15, [r14]
		addi r15, 10
		store [r14], r15
		ret
	.align 8
	act1:
		.quad handler1, 0, 0
	act2:
		.quad handler2, 0, 0
	`)
	rec := &trace.Recorder{}
	rt, err := Attach(k, task, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, k)
	if task.ExitCode != 11 {
		t.Fatalf("exit = %d, want 11 (nested handlers both ran)", task.ExitCode)
	}
	if rt.Stats.SigreturnsRouted != 2 {
		t.Errorf("sigreturns routed = %d, want 2", rt.Stats.SigreturnsRouted)
	}
	if rt.Stats.WrappedSignals != 2 {
		t.Errorf("wrapped signals = %d, want 2", rt.Stats.WrappedSignals)
	}
	// Every level's syscalls traced: 2 sigactions, getpid, kill, (h1:
	// getpid, kill, (h2: gettid, rt_sigreturn), rt_sigreturn), gettid, exit.
	sigreturns := 0
	for _, nr := range rec.Nrs() {
		if nr == kernel.SysRtSigreturn {
			sigreturns++
		}
	}
	if sigreturns != 2 {
		t.Errorf("traced %d rt_sigreturns, want 2", sigreturns)
	}
}

// TestSysenterAlsoRewritten verifies the second 2-byte syscall encoding
// is handled identically by the lazy rewriter.
func TestSysenterAlsoRewritten(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, `
	_start:
		mov64 rax, 39
		sysenter            ; getpid via SYSENTER
		mov rdi, rax
		mov64 rax, 60
		syscall
	`)
	rec := &trace.Recorder{}
	rt, err := Attach(k, task, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, k)
	if task.ExitCode != task.Tgid {
		t.Fatalf("exit = %d, want pid", task.ExitCode)
	}
	if !rec.Contains(kernel.SysGetpid) {
		t.Error("sysenter-based getpid not interposed")
	}
	if rt.Stats.Rewrites != 2 {
		t.Errorf("rewrites = %d, want 2 (sysenter + syscall sites)", rt.Stats.Rewrites)
	}
}

// TestManySitesManyIterations hammers the full hybrid: a dozen distinct
// sites in a loop, verifying the slow path fires exactly once per site
// and the fast path handles the rest.
func TestManySitesManyIterations(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, `
	_start:
		mov64 rcx, 50
	loop:
		push rcx
		mov64 rax, 39
		syscall          ; site 1
		mov64 rax, 186
		syscall          ; site 2
		mov64 rax, 39
		syscall          ; site 3
		mov64 rax, 186
		syscall          ; site 4
		mov64 rax, 39
		syscall          ; site 5
		pop rcx
		addi rcx, -1
		jnz loop
		mov64 rdi, 0
		mov64 rax, 60
		syscall          ; site 6
	`)
	rec := &trace.Recorder{}
	rt, err := Attach(k, task, rec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, k)
	if task.ExitCode != 0 {
		t.Fatalf("exit = %d", task.ExitCode)
	}
	if rt.Stats.SlowPathHits != 6 {
		t.Errorf("slow path hits = %d, want 6 (one per site)", rt.Stats.SlowPathHits)
	}
	if got := len(rec.Nrs()); got != 50*5+1 {
		t.Errorf("traced %d syscalls, want 251", got)
	}
}

// TestInterposerRewritesPathArgument exercises deep argument
// modification through the whole hybrid plumbing: the interposer
// redirects an open("/etc/passwd") to another file.
func TestInterposerRewritesPathArgument(t *testing.T) {
	k := kernel.New(kernel.Config{})
	if err := k.FS.MkdirAll("/etc", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/etc/passwd", []byte("root:secret"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/etc/decoy", []byte("nothing"), 0o644); err != nil {
		t.Fatal(err)
	}
	task := spawn(t, k, `
	_start:
		mov64 rax, 2        ; open("/etc/passwd")
		lea rdi, path
		mov64 rsi, 0
		mov64 rdx, 0
		syscall
		mov rbx, rax
		mov64 rax, 0        ; read(fd, buf, 16)
		mov rdi, rbx
		mov64 rsi, 0x7fef0000
		mov64 rdx, 16
		syscall
		mov rdi, rax        ; exit(bytes read)
		mov64 rax, 60
		syscall
	path:
		.ascii "/etc/passwd"
		.byte 0
	`)
	redirect := interpose.FuncInterposer{
		OnEnter: func(c *interpose.Call) interpose.Action {
			if c.Nr != kernel.SysOpen {
				return interpose.Continue
			}
			if path, ok := c.ReadString(c.Args[0]); ok && path == "/etc/passwd" {
				// Rewrite the guest's path bytes in place: full
				// expressiveness, invisible to the application.
				_ = c.WriteMem(c.Args[0], []byte("/etc/decoy\x00"))
			}
			return interpose.Continue
		},
	}
	if _, err := Attach(k, task, redirect, Options{}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, k)
	if task.ExitCode != len("nothing") {
		t.Fatalf("exit = %d, want %d (read the decoy)", task.ExitCode, len("nothing"))
	}
	var buf [7]byte
	if err := task.AS.ReadForce(0x7fef0000, buf[:]); err != nil {
		t.Fatal(err)
	}
	if string(buf[:]) != "nothing" {
		t.Errorf("guest read %q, want the decoy contents", buf)
	}
}

// TestZeroSyscallNumberTraversesWholeSled: syscall nr 0 (read) enters
// the nop sled at its very top — the worst case the batched-NOP cost
// model is about.
func TestZeroSyscallNumberTraversesWholeSled(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, `
	_start:
		; read(0, buf, 0) -> 0 (console EOF)
		mov64 rax, 0
		mov64 rdi, 0
		mov64 rsi, 0x7fef0000
		mov64 rdx, 0
		syscall
		mov rdi, rax
		mov64 rax, 60
		syscall
	`)
	rec := &trace.Recorder{}
	if _, err := Attach(k, task, rec, Options{}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, k)
	if task.ExitCode != 0 {
		t.Fatalf("exit = %d", task.ExitCode)
	}
	if !rec.Contains(kernel.SysRead) {
		t.Error("read (nr 0) not interposed through the full sled")
	}
}
