// Command microbench regenerates the paper's Table II and Figure 4: the
// cycle cost of interposing a non-existent syscall (number 500) under
// every mechanism, and the breakdown of lazypoline's overhead into
// rewriting, SUD-enablement and xstate preservation.
//
// Usage:
//
//	microbench [-iters N] [-breakdown] [-j N] [-out BENCH_table2.json]
//
// The Table II rows run on a bounded worker pool (-j, default all CPUs);
// each row owns an isolated simulated machine, so the output is
// identical at any parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lazypoline/internal/benchfmt"
	"lazypoline/internal/experiments"
)

func main() {
	iters := flag.Int64("iters", 100_000, "microbenchmark iterations (the paper uses 100M on hardware)")
	breakdown := flag.Bool("breakdown", false, "also print the Figure 4 overhead breakdown")
	parallel := flag.Int("j", experiments.DefaultParallelism(), "rows measured concurrently")
	out := flag.String("out", "BENCH_table2.json", "machine-readable result file (empty disables)")
	flag.Parse()

	if err := run(*iters, *breakdown, *parallel, *out); err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
}

func run(iters int64, breakdown bool, parallel int, out string) error {
	fmt.Printf("Table II — microbenchmark: syscall %s x%d (paper: Xeon Gold 5318S @ 2.10 GHz)\n\n",
		"500 (non-existent)", iters)
	begin := time.Now()
	rows, err := experiments.Table2Parallel(iters, parallel)
	if err != nil {
		return err
	}
	wall := time.Since(begin)
	paper := map[string]string{
		experiments.MechZpoline:      "(n/a)",
		experiments.MechLazypolineNX: "1.66x",
		experiments.MechLazypoline:   "2.38x",
		experiments.MechSUD:          "20.8x",
		experiments.MechBaselineSUD:  "1.42x",
		experiments.MechBaseline:     "1.00x",
	}
	fmt.Printf("  %-24s %12s %10s %10s\n", "configuration", "cycles/call", "measured", "paper")
	for _, r := range rows {
		fmt.Printf("  %-24s %12.1f %9.2fx %10s\n", r.Mechanism, r.CyclesPerCall, r.Overhead, paper[r.Mechanism])
	}

	if out != "" {
		type config struct {
			Iters      int64    `json:"iters"`
			Mechanisms []string `json:"mechanisms"`
		}
		err := benchfmt.Write(out, benchfmt.File{
			Name:        "table2",
			Parallelism: parallel,
			WallSeconds: wall.Seconds(),
			Config:      config{Iters: iters, Mechanisms: experiments.Table2Mechanisms},
			Results:     rows,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", out)
	}

	if !breakdown {
		return nil
	}
	fmt.Printf("\nFigure 4 — lazypoline overhead breakdown (cycles/call over baseline)\n\n")
	f4, err := experiments.Figure4(iters)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s %10.1f\n", "baseline", f4.BaselineCycles)
	fmt.Printf("  %-28s %10.1f  (+%.1f rewriting/trampoline)\n", "zpoline (pure rewriting)", f4.ZpolineCycles, f4.RewritingOver)
	fmt.Printf("  %-28s %10.1f  (+%.1f enabling SUD)\n", "lazypoline w/o xstate", f4.NoXStateCycles, f4.EnablingSUDOver)
	fmt.Printf("  %-28s %10.1f  (+%.1f xstate preservation)\n", "lazypoline", f4.FullCycles, f4.XStateOver)
	fmt.Printf("\n  verification: fast path with SUD disabled = %.1f cycles/call (zpoline: %.1f)\n",
		f4.FastPathNoSUD, f4.ZpolineCycles)

	// §VI ablation: MPK-protected selector.
	mpk, err := experiments.Table2Single(experiments.MechLazypolineMPK, iters)
	if err != nil {
		return err
	}
	fmt.Printf("  ablation: lazypoline + MPK selector protection = %.1f cycles/call (+%.1f)\n",
		mpk, mpk-f4.FullCycles)
	return nil
}
