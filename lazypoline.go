// Package lazypoline is the public façade of lazypoline-go: a pure-Go
// reproduction of "System Call Interposition Without Compromise"
// (DSN 2024) on a simulated x86-64 machine and Linux-like kernel.
//
// The package re-exports the stable surface of the internal packages so
// downstream users need a single import for the common workflow:
//
//	k := lazypoline.NewKernel()
//	prog, _ := lazypoline.BuildGuest("hello", lazypoline.GuestHeader+`
//	_start:
//	    mov64 rax, SYS_getpid
//	    syscall
//	    mov rdi, rax
//	    mov64 rax, SYS_exit
//	    syscall
//	`)
//	task, _ := prog.Spawn(k)
//	rec := lazypoline.NewRecorder()
//	rt, _ := lazypoline.Attach(k, task, rec, lazypoline.Options{})
//	_ = k.Run(-1)
//
// For the baselines (zpoline, SUD, seccomp, ptrace), the evaluation
// harnesses, the Pin-like analysis and the web-server benchmark, import
// the specific internal package; DESIGN.md carries the inventory.
package lazypoline

import (
	"lazypoline/internal/core"
	"lazypoline/internal/guest"
	"lazypoline/internal/interpose"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
)

// Re-exported types: the simulated OS.
type (
	// Kernel is the simulated operating system; see kernel.Kernel.
	Kernel = kernel.Kernel
	// KernelConfig configures NewKernelWith.
	KernelConfig = kernel.Config
	// Task is one guest thread of execution.
	Task = kernel.Task
	// CostModel prices every modelled operation in cycles.
	CostModel = kernel.CostModel
)

// Re-exported types: the interposition API.
type (
	// Interposer is the user-supplied syscall handler (fully expressive).
	Interposer = interpose.Interposer
	// Call is one interposed syscall.
	Call = interpose.Call
	// Action is an Enter hook's verdict (Continue or Emulate).
	Action = interpose.Action
	// FuncInterposer adapts plain functions to Interposer.
	FuncInterposer = interpose.FuncInterposer
	// Dummy executes every syscall unmodified (the benchmark interposer).
	Dummy = interpose.Dummy
)

// Re-exported types: lazypoline itself and guest tooling.
type (
	// Options configures Attach; see core.Options.
	Options = core.Options
	// Runtime is an attached lazypoline instance with its Stats.
	Runtime = core.Runtime
	// GuestProgram is an assembled guest executable.
	GuestProgram = guest.Program
	// Recorder is a tracing interposer (strace-style).
	Recorder = trace.Recorder
	// TraceEntry is one recorded syscall.
	TraceEntry = trace.Entry
)

// Interposer verdicts.
const (
	// Continue executes the (possibly modified) syscall.
	Continue = interpose.Continue
	// Emulate skips the syscall and uses Call.Ret as its result.
	Emulate = interpose.Emulate
)

// GuestHeader is the assembly prelude defining SYS_* constants for guest
// sources passed to BuildGuest.
const GuestHeader = guest.Header

// NewKernel returns a simulated kernel with the default cost model, an
// empty in-memory filesystem and a loopback network stack.
func NewKernel() *Kernel {
	return kernel.New(kernel.Config{})
}

// NewKernelWith returns a kernel with explicit configuration.
func NewKernelWith(cfg KernelConfig) *Kernel {
	return kernel.New(cfg)
}

// DefaultCostModel returns the cycle prices calibrated against the
// paper's Table II.
func DefaultCostModel() CostModel {
	return kernel.DefaultCostModel()
}

// BuildGuest assembles guest source (entry `_start`) into a loadable
// program. Prepend GuestHeader for the SYS_* constants.
func BuildGuest(name, src string) (*GuestProgram, error) {
	return guest.Build(name, src)
}

// Attach installs lazypoline — selector-only SUD slow path, lazy
// rewriting, zpoline-style fast path — on a task. The interposer sees
// every syscall the task (and its children) will ever make.
func Attach(k *Kernel, t *Task, ip Interposer, opts Options) (*Runtime, error) {
	return core.Attach(k, t, ip, opts)
}

// NewRecorder returns a tracing interposer.
func NewRecorder() *Recorder {
	return &trace.Recorder{}
}

// SyscallName renders a syscall number like "getpid".
func SyscallName(nr int64) string {
	return kernel.SyscallName(nr)
}
