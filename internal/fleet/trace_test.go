package fleet

import (
	"bytes"
	"reflect"
	"strconv"
	"testing"

	"lazypoline/internal/otrace"
	"lazypoline/internal/telemetry"
)

// traceKillConfig is the acceptance-gate farm: a kill drill under
// enough offered load and per-request work that requests are reliably
// in flight on the dying backend — so the trace must show client
// retries routed through the balancer. The retry backoff exceeds the
// healthy tail, so retried requests ARE the p99: the top histogram
// bucket's exemplar must resolve to a retried tree.
func traceKillConfig() Config {
	cfg := testConfig()
	cfg.Requests = 100
	cfg.Rate = 100
	cfg.AppWorkIters = 20_000
	cfg.BackoffBase = 2_000_000
	cfg.Drill = Drill{Kind: DrillKill, Backend: 2}
	return cfg
}

// TestFleetTraceInertness: attaching a tracer must not change a single
// field of the Result (TraceStats aside — that field IS the tracer's
// output). This is the plane's half of the DESIGN.md §14 contract; the
// CI fleetbench diff is the snapshot half.
func TestFleetTraceInertness(t *testing.T) {
	cfg := traceKillConfig()
	plain := runOrFatal(t, cfg)

	cfg.Trace = otrace.New(otrace.Config{})
	traced := runOrFatal(t, cfg)

	if traced.TraceStats.Started == 0 {
		t.Fatal("tracer attached but no requests traced")
	}
	traced.TraceStats = otrace.Stats{}
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracer changed the run:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

// TestFleetTraceDeterminism: same (config, seed) ⇒ byte-identical trace
// files, the export half of the determinism contract.
func TestFleetTraceDeterminism(t *testing.T) {
	export := func() []byte {
		cfg := traceKillConfig()
		cfg.Trace = otrace.New(otrace.Config{})
		runOrFatal(t, cfg)
		var buf bytes.Buffer
		if err := telemetry.EncodeJSONL(&buf, cfg.Trace.Export()); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Error("same-seed runs exported different trace files")
	}
}

// TestFleetTraceKillDrillExemplar is the PR's acceptance criterion: a
// p99 latency-histogram exemplar from the kill drill must resolve to a
// complete span tree — request root, an LB retry span (the re-routed
// attempt after the backend died), and per-syscall kernel spans with
// dispatch-path attribution.
func TestFleetTraceKillDrillExemplar(t *testing.T) {
	cfg := traceKillConfig()
	tr := otrace.New(otrace.Config{})
	cfg.Trace = tr
	res := runOrFatal(t, cfg)

	if res.Retries == 0 {
		t.Fatal("kill drill produced no retries; the acceptance config must keep requests in flight on the dying backend")
	}
	if len(res.ExemplarBuckets) == 0 {
		t.Fatal("no histogram exemplars recorded")
	}
	// The top bucket's exemplar is the slowest completed request — under
	// a kill drill, a retried one. p99 lives in (or below) this bucket.
	top := res.ExemplarBuckets[len(res.ExemplarBuckets)-1]
	trace, err := strconv.ParseUint(top.Trace, 16, 64)
	if err != nil {
		t.Fatalf("exemplar trace %q: %v", top.Trace, err)
	}
	tree := tr.Tree(trace)
	if tree == nil {
		t.Fatalf("exemplar trace %s has no retained tree (reasons: %v)", top.Trace, retentionReasons(tr))
	}
	if tree.Outcome.Latency != top.Value {
		t.Errorf("exemplar value %d != tree latency %d", top.Value, tree.Outcome.Latency)
	}
	if tree.Outcome.Attempts < 2 {
		t.Errorf("slowest request was not retried (attempts=%d)", tree.Outcome.Attempts)
	}

	var root, lbRetry, sysAttributed bool
	for _, s := range tree.Spans {
		switch {
		case s.Kind == otrace.KindRequest:
			root = true
		case s.Kind == otrace.KindLB && s.Name == "retry":
			lbRetry = true
		case s.Kind == otrace.KindSys && s.Path != "" && s.Name != "":
			sysAttributed = true
		}
	}
	if !root {
		t.Error("tree lacks its request root span")
	}
	if !lbRetry {
		t.Errorf("tree lacks an LB retry span; spans: %v", spanNames(tree.Spans))
	}
	if !sysAttributed {
		t.Errorf("tree lacks dispatch-path-attributed kernel spans; spans: %v", spanNames(tree.Spans))
	}

	// The kill must also have dumped the flight recorder.
	if tr.Stats().FlightDumps == 0 {
		t.Error("KillTree never dumped the flight recorder")
	}
	// And the SLO report must cover all three drill phases.
	if len(res.SLO.Phases) != 3 || res.SLO.Good+res.SLO.Bad != res.Requests {
		t.Errorf("SLO report malformed: %+v", res.SLO)
	}
}

func spanNames(spans []otrace.Span) []string {
	var out []string
	for _, s := range spans {
		out = append(out, s.Kind+"/"+s.Name)
	}
	return out
}

func retentionReasons(tr *otrace.Tracer) map[string]int {
	out := map[string]int{}
	for _, t := range tr.Trees() {
		out[t.Reason]++
	}
	return out
}
