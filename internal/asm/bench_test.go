package asm

import (
	"strings"
	"testing"
)

// BenchmarkAssemble measures assembling a mid-sized program (both passes).
func BenchmarkAssemble(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("_start:\n")
	for i := 0; i < 200; i++ {
		sb.WriteString("\tmov64 rax, 39\n\tsyscall\n\taddi rbx, 1\n")
	}
	sb.WriteString("\thlt\n")
	src := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src, 0x1000); err != nil {
			b.Fatal(err)
		}
	}
}
