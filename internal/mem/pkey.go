package mem

import "fmt"

// Memory protection keys (MPK), the commodity hardware primitive the
// paper's §VI proposes for isolating the interposer's sensitive state —
// most importantly the SUD selector byte — from attacker-controlled
// application code.
//
// Pages carry a 4-bit protection key; the (per-hardware-thread) PKRU
// register holds two bits per key: access-disable and write-disable.
// Instruction fetch is never blocked by MPK, and kernel-privileged
// accesses (the Force variants) bypass it, both as on x86.

// NumPkeys is the number of protection keys (x86 has 16).
const NumPkeys = 16

// PKRU bit helpers.
const (
	// PkeyAccessDisable yields the access-disable bit for a key.
	pkeyADShift = 0
	// PkeyWriteDisable yields the write-disable bit for a key.
	pkeyWDShift = 1
)

// PkeyAccessDisableBit returns the PKRU bit that disables all access to
// pages tagged with key.
func PkeyAccessDisableBit(key uint8) uint32 { return 1 << (2*uint32(key) + pkeyADShift) }

// PkeyWriteDisableBit returns the PKRU bit that disables writes to pages
// tagged with key.
func PkeyWriteDisableBit(key uint8) uint32 { return 1 << (2*uint32(key) + pkeyWDShift) }

// SetPkey tags every page of [addr, addr+length) with a protection key
// (pkey_mprotect). Both bounds must be page-aligned and mapped.
func (as *AddressSpace) SetPkey(addr, length uint64, key uint8) error {
	if addr%PageSize != 0 || length == 0 || length%PageSize != 0 {
		return ErrBadRange
	}
	if key >= NumPkeys {
		return fmt.Errorf("%w: pkey %d", ErrBadRange, key)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	first, n := addr>>PageShift, length>>PageShift
	for i := uint64(0); i < n; i++ {
		if _, ok := as.pages[first+i]; !ok {
			return fmt.Errorf("%w: page %#x not mapped", ErrBadRange, (first+i)<<PageShift)
		}
	}
	for i := uint64(0); i < n; i++ {
		pg := as.pages[first+i]
		pg.pkey = key
		// A pkey change alters what a cached access decision may permit, so
		// it must invalidate software-TLB handles the same way mprotect
		// does: by issuing a fresh generation.
		pg.gen.Store(as.nextGen())
	}
	return nil
}

// PkeyAt returns the protection key of the page containing addr.
func (as *AddressSpace) PkeyAt(addr uint64) (uint8, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	pg, ok := as.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return pg.pkey, true
}

// SetActivePKRU installs the PKRU value guest data accesses are checked
// against. The simulator schedules one task at a time, so the kernel
// loads the running task's PKRU here on every quantum (on hardware PKRU
// is per logical CPU).
func (as *AddressSpace) SetActivePKRU(v uint32) {
	as.mu.Lock()
	as.activePKRU = v
	as.mu.Unlock()
}

// ActivePKRU returns the currently installed PKRU value.
func (as *AddressSpace) ActivePKRU() uint32 {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.activePKRU
}

// PkeyAllows checks a guest data access against a PKRU value. Exported
// for the CPU's software-TLB hit path, which checks its own (per-task)
// PKRU register against the handle's cached pkey without taking the
// address-space lock.
func PkeyAllows(pkru uint32, key uint8, write bool) bool {
	return pkeyAllows(pkru, key, write)
}

// pkeyAllows checks a guest data access against the active PKRU.
// Key 0 is the default key and is never restricted (matching how our
// guests use it; x86 technically allows restricting key 0 too, which
// would instantly crash any program).
func pkeyAllows(pkru uint32, key uint8, write bool) bool {
	if key == 0 {
		return true
	}
	if pkru&PkeyAccessDisableBit(key) != 0 {
		return false
	}
	if write && pkru&PkeyWriteDisableBit(key) != 0 {
		return false
	}
	return true
}
