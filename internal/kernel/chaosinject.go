package kernel

import (
	"lazypoline/internal/chaos"
	"lazypoline/internal/netstack"
)

// This file is the kernel half of the deterministic fault-injection
// engine (internal/chaos). Every decision here must key on APPLICATION
// level events so that the fault schedule is identical under every
// interposition mechanism: a lazypoline rewrite mprotect, a SUD stub
// re-issue, or a ptrace stop must never advance a chaos stream. Two
// exemptions enforce that:
//
//   - t.hostSyscall: syscalls synthesised by interposer Go payloads via
//     Kernel.Syscall (mechanism-internal by construction);
//   - rt_sigreturn (and every other syscall outside chaosEligible):
//     mechanisms deliver different numbers of signals, so sigreturn
//     counts differ per mechanism.
//
// With those in place, the nth dispatch of an eligible syscall by a
// given task is the same application event under every mechanism, and
// the chaos-invariance suite can demand byte-identical outcomes.

// chaosEligible reports whether a syscall may receive injected errnos.
// The set is restricted to calls with POSIX-sanctioned EINTR/EAGAIN
// semantics that our hardened guests retry; injecting into, say, clone
// would fault guests in ways no libc survives.
func chaosEligible(nr int64) bool {
	switch nr {
	case SysRead, SysWrite, SysRecvfrom, SysSendto, SysSendfile,
		SysAccept, SysAccept4, SysNanosleep:
		return true
	}
	return false
}

// chaosStream builds the per-(task, syscall) stream id: each syscall
// number gets an independent stream per task, so e.g. injecting into
// reads can never shift the fault positions seen by writes.
func chaosStream(t *Task, nr int64) uint64 {
	return uint64(t.ID)<<16 | uint64(nr)&0xFFFF
}

// chaosSyscall decides whether to inject an errno instead of running
// the syscall. It runs after the interposition layers and the
// OnDispatch ground-truth hook, so every mechanism observes the
// injected failure identically. Returns (result, true) on injection.
func (k *Kernel) chaosSyscall(t *Task, nr int64) (sysResult, bool) {
	if k.chaos == nil || t.hostSyscall || !chaosEligible(nr) {
		return sysResult{}, false
	}
	id := chaosStream(t, nr)
	if !k.chaos.Fire(chaos.SiteSyscallErrno, id) {
		return sysResult{}, false
	}
	// Nanosleep has no EAGAIN semantics; everything else alternates
	// deterministically between the two retryable errnos.
	if nr == SysNanosleep || k.chaos.Pick(chaos.SiteSyscallErrno, id, 2) == 0 {
		return sysErr(EINTR), true
	}
	return sysErr(EAGAIN), true
}

// chaosFaults adapts the chaos engine to netstack's FaultPlan. Each
// connection id owns independent drop/delay/reset streams, keyed by
// Connect order — an application-level event sequence.
type chaosFaults struct{ e *chaos.Engine }

func (c chaosFaults) Drop(id uint64) bool  { return c.e.Fire(chaos.SiteNetDrop, id) }
func (c chaosFaults) Delay(id uint64) bool { return c.e.Fire(chaos.SiteNetDelay, id) }
func (c chaosFaults) Reset(id uint64) bool { return c.e.Fire(chaos.SiteNetReset, id) }

var _ netstack.FaultPlan = chaosFaults{}

// chaosShortIO truncates a transfer length to model a short read or
// write (site picks which stream). The result stays >= 1 byte so the
// operation still makes progress — livelock-free by construction.
func (k *Kernel) chaosShortIO(t *Task, site chaos.Site, count uint64) uint64 {
	if k.chaos == nil || t.hostSyscall || count <= 1 {
		return count
	}
	if !k.chaos.Fire(site, uint64(t.ID)) {
		return count
	}
	return 1 + k.chaos.Pick(site, uint64(t.ID), count-1)
}
