// Package netstack implements the loopback-only network substrate the
// simulated web servers are benchmarked against: stream sockets with
// listen/accept/connect, bounded receive buffers, peer shutdown
// semantics, and edge-notified readiness that the kernel's epoll and
// blocking-syscall machinery subscribe to.
//
// The wrk-like load generator (package webbench) drives the client side
// of these sockets directly from Go, which mirrors the paper's setup: the
// client runs on separate cores (taskset) and is never part of the
// measured system.
package netstack

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Readiness is a poll-style event mask.
type Readiness uint8

// Readiness bits.
const (
	ReadyIn  Readiness = 1 << iota // data (or a pending connection) to read
	ReadyOut                       // writable
	ReadyHup                       // peer closed
)

// Errors.
var (
	ErrAddrInUse   = errors.New("netstack: address already in use") // EADDRINUSE
	ErrConnRefused = errors.New("netstack: connection refused")     // ECONNREFUSED
	ErrWouldBlock  = errors.New("netstack: operation would block")  // EAGAIN
	ErrClosed      = errors.New("netstack: endpoint closed")        // EBADF
	ErrPipe        = errors.New("netstack: broken pipe")            // EPIPE
	ErrBacklogFull = errors.New("netstack: accept backlog full")    // (dropped SYN)
)

// RecvBufSize is the per-endpoint receive buffer capacity. Writers block
// (EAGAIN) when the peer's buffer is full, which gives the web server
// benchmark realistic backpressure.
const RecvBufSize = 256 * 1024

// Pollable is anything epoll or a blocking syscall can wait on.
type Pollable interface {
	// Ready returns the current readiness mask.
	Ready() Readiness
	// Subscribe registers fn to be called (with no locks held) whenever
	// readiness may have changed. The returned cancel removes it.
	Subscribe(fn func()) (cancel func())
}

// notifier implements Subscribe/wakeup bookkeeping.
type notifier struct {
	mu   sync.Mutex
	subs map[int]func()
	next int
}

func (n *notifier) Subscribe(fn func()) func() {
	n.mu.Lock()
	if n.subs == nil {
		n.subs = make(map[int]func())
	}
	id := n.next
	n.next++
	n.subs[id] = fn
	n.mu.Unlock()
	return func() {
		n.mu.Lock()
		delete(n.subs, id)
		n.mu.Unlock()
	}
}

func (n *notifier) wake() {
	// Fire in subscription order, not map order: with several epoll
	// instances subscribed to one object (pre-forked workers sharing a
	// listener), randomized map iteration would make wake order — and
	// therefore measured cycle counts on heavily loaded cells —
	// nondeterministic across runs.
	n.mu.Lock()
	ids := make([]int, 0, len(n.subs))
	for id := range n.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, n.subs[id])
	}
	n.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Stack is one loopback network namespace.
type Stack struct {
	mu        sync.Mutex
	listeners map[uint16]*Listener
}

// NewStack returns an empty stack.
func NewStack() *Stack {
	return &Stack{listeners: make(map[uint16]*Listener)}
}

// Listen binds a listener to port.
func (s *Stack) Listen(port uint16, backlog int) (*Listener, error) {
	if backlog <= 0 {
		backlog = 128
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.listeners[port]; ok {
		return nil, fmt.Errorf("%w: port %d", ErrAddrInUse, port)
	}
	l := &Listener{stack: s, port: port, backlog: backlog, refs: 1}
	s.listeners[port] = l
	return l, nil
}

// Connect opens a client connection to port, returning the client-side
// endpoint. The server side lands in the listener's accept queue.
func (s *Stack) Connect(port uint16) (*Endpoint, error) {
	s.mu.Lock()
	l, ok := s.listeners[port]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: port %d", ErrConnRefused, port)
	}
	client, server := newPair()
	if err := l.enqueue(server); err != nil {
		return nil, err
	}
	return client, nil
}

// Listener is a bound, listening socket.
type Listener struct {
	notif   notifier
	stack   *Stack
	port    uint16
	backlog int

	mu     sync.Mutex
	queue  []*Endpoint
	closed bool
	refs   int
}

func (l *Listener) enqueue(e *Endpoint) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrConnRefused
	}
	if len(l.queue) >= l.backlog {
		l.mu.Unlock()
		return ErrBacklogFull
	}
	l.queue = append(l.queue, e)
	l.mu.Unlock()
	l.notif.wake()
	return nil
}

// Accept dequeues a pending connection, or ErrWouldBlock.
func (l *Listener) Accept() (*Endpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if len(l.queue) == 0 {
		return nil, ErrWouldBlock
	}
	e := l.queue[0]
	l.queue = l.queue[1:]
	return e, nil
}

// AddRef registers another descriptor referencing this listener.
func (l *Listener) AddRef() {
	l.mu.Lock()
	l.refs++
	l.mu.Unlock()
}

// Close drops one reference; the listener unbinds and refuses pending
// connections when the last reference is gone.
func (l *Listener) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if l.refs > 1 {
		l.refs--
		l.mu.Unlock()
		return
	}
	l.refs = 0
	l.closed = true
	pending := l.queue
	l.queue = nil
	l.mu.Unlock()

	l.stack.mu.Lock()
	delete(l.stack.listeners, l.port)
	l.stack.mu.Unlock()
	for _, e := range pending {
		e.Close()
	}
	l.notif.wake()
}

// Ready reports ReadyIn when a connection is waiting.
func (l *Listener) Ready() Readiness {
	l.mu.Lock()
	defer l.mu.Unlock()
	var r Readiness
	if len(l.queue) > 0 {
		r |= ReadyIn
	}
	if l.closed {
		r |= ReadyHup
	}
	return r
}

// Subscribe implements Pollable.
func (l *Listener) Subscribe(fn func()) func() { return l.notif.Subscribe(fn) }

// Port returns the bound port.
func (l *Listener) Port() uint16 { return l.port }

// Endpoint is one side of an established stream connection. Endpoints
// are reference counted: fork and dup duplicate descriptors that share
// one endpoint, and the connection only really closes when the last
// reference drops (Linux file-description semantics).
type Endpoint struct {
	notif notifier

	mu     sync.Mutex
	buf    []byte // receive buffer
	peer   *Endpoint
	closed bool
	refs   int
}

func newPair() (a, b *Endpoint) {
	a, b = &Endpoint{refs: 1}, &Endpoint{refs: 1}
	a.peer, b.peer = b, a
	return a, b
}

// AddRef registers another descriptor referencing this endpoint.
func (e *Endpoint) AddRef() {
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
}

// NewPipe returns a connected endpoint pair used as a unidirectional
// pipe: read from the first, write to the second. (Both directions work
// — it is a socketpair — but the kernel labels the ends.)
func NewPipe() (readEnd, writeEnd *Endpoint) {
	return newPair()
}

// Read drains up to len(p) bytes from the receive buffer. It returns
// (0, nil) for EOF (peer closed, buffer drained) and ErrWouldBlock when
// no data is available yet.
func (e *Endpoint) Read(p []byte) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	if len(e.buf) == 0 {
		peer := e.peer
		e.mu.Unlock()
		// Peer state is checked with our own lock released so that two
		// sides reading concurrently cannot deadlock on each other.
		if peer == nil || peer.isClosed() {
			return 0, nil // EOF
		}
		return 0, ErrWouldBlock
	}
	n := copy(p, e.buf)
	e.buf = e.buf[n:]
	peer := e.peer
	e.mu.Unlock()
	if peer != nil {
		// Our buffer drained: the peer may be writable again.
		peer.notif.wake()
	}
	return n, nil
}

// Write appends to the peer's receive buffer. It returns ErrPipe if the
// peer is gone and ErrWouldBlock when the peer's buffer is full.
func (e *Endpoint) Write(p []byte) (int, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	peer := e.peer
	e.mu.Unlock()
	if peer == nil || peer.isClosed() {
		return 0, ErrPipe
	}
	peer.mu.Lock()
	space := RecvBufSize - len(peer.buf)
	if space <= 0 {
		peer.mu.Unlock()
		return 0, ErrWouldBlock
	}
	n := len(p)
	if n > space {
		n = space
	}
	peer.buf = append(peer.buf, p[:n]...)
	peer.mu.Unlock()
	peer.notif.wake()
	return n, nil
}

// Close drops one reference; the endpoint shuts down (waking both
// sides) when the last reference is gone.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	if e.refs > 1 {
		e.refs--
		e.mu.Unlock()
		return
	}
	e.refs = 0
	e.closed = true
	peer := e.peer
	e.mu.Unlock()
	e.notif.wake()
	if peer != nil {
		peer.notif.wake()
	}
}

func (e *Endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Buffered returns the number of bytes waiting to be read.
func (e *Endpoint) Buffered() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.buf)
}

// Ready implements Pollable. It never holds its own lock while taking the
// peer's, so concurrent Ready calls from both sides cannot deadlock.
func (e *Endpoint) Ready() Readiness {
	e.mu.Lock()
	bufLen := len(e.buf)
	closed := e.closed
	peer := e.peer
	e.mu.Unlock()

	var r Readiness
	if bufLen > 0 {
		r |= ReadyIn
	}
	if closed {
		return r | ReadyHup
	}
	if peer == nil {
		return r | ReadyHup
	}
	if peer.isClosed() {
		r |= ReadyIn | ReadyHup // EOF is readable
	} else if peer.space() > 0 {
		r |= ReadyOut
	}
	return r
}

func (e *Endpoint) space() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return RecvBufSize - len(e.buf)
}

// Subscribe implements Pollable.
func (e *Endpoint) Subscribe(fn func()) func() { return e.notif.Subscribe(fn) }

var (
	_ Pollable = (*Endpoint)(nil)
	_ Pollable = (*Listener)(nil)
)
