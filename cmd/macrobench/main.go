// Command macrobench regenerates the paper's Figure 5: nginx-like and
// lighttpd-like web servers serving static files of varying sizes under
// every interposition mechanism, with 1 and 12 pre-forked workers,
// loaded by a wrk-like keep-alive client.
//
// Usage:
//
//	macrobench [-requests N] [-conns N] [-sizes 64,1024,...] [-workers 1,12] [-servers nginx,lighttpd] [-j N] [-out BENCH_figure5.json]
//
// Cells run on a bounded worker pool (-j, default all CPUs); each cell
// owns an isolated simulated machine, and results are assembled in plot
// order, so parallel output is byte-identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lazypoline/internal/benchfmt"
	"lazypoline/internal/experiments"
	"lazypoline/internal/guest"
	"lazypoline/internal/otrace"
	"lazypoline/internal/telemetry"
	"lazypoline/internal/webbench"
)

func main() {
	requests := flag.Int("requests", 240, "requests per configuration")
	conns := flag.Int("conns", 36, "keep-alive client connections (wrk threads)")
	sizes := flag.String("sizes", "64,1024,16384,65536,262144", "file sizes in bytes")
	workers := flag.String("workers", "1,12", "worker process counts")
	servers := flag.String("servers", "nginx,lighttpd", "server styles")
	capFactor := flag.Float64("clientcap", 10, "client capacity as a multiple of the 1-worker baseline (0 disables)")
	parallel := flag.Int("j", experiments.DefaultParallelism(), "sweep cells measured concurrently")
	decodeCache := flag.Bool("decodecache", true, "run the simulated CPUs with the decoded-instruction cache (results are identical either way; false re-measures without it)")
	tlb := flag.Bool("tlb", true, "run the simulated CPUs with the software D-TLB (results are identical either way; false re-measures without it)")
	superblock := flag.Bool("superblock", true, "run the simulated CPUs with superblock execution (results are identical either way; false re-measures without it)")
	chain := flag.Bool("chain", true, "run the simulated CPUs with block chaining (results are identical either way; false re-measures without it)")
	traces := flag.Bool("traces", true, "run the simulated CPUs with hot-trace compilation and fused handlers (results are identical either way; false re-measures without them)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "deterministic fault-injection seed (see internal/chaos)")
	chaosRate := flag.Float64("chaos-rate", 0, "fault-injection rate in [0,1]; 0 disables chaos entirely")
	policyRegions := flag.Bool("policy-regions", false, "enforce the privilege-region syscall policy in every cell")
	policySFIP := flag.Bool("policy-sfip", false, "enforce a per-cell learned SFIP syscall policy (learn-then-enforce double run)")
	reqTrace := flag.Bool("reqtrace", false, "attach a request tracer to every cell (results are identical either way; the instrumented -trace-out run gains request span trees)")
	cores := flag.Int("cores", 1, "host cores each cell's kernel scheduler may use (results are byte-identical for every value)")
	out := flag.String("out", "BENCH_figure5.json", "machine-readable result file (empty disables)")
	metricsOut := flag.String("metrics-out", "", "record per-dispatch-path cycle breakdowns for every cell into this benchfmt file")
	traceOut := flag.String("trace-out", "", "write a timeline trace of one instrumented webserver run (.jsonl = compact lines, else Chrome/Perfetto JSON)")
	profileOut := flag.String("profile-out", "", "write folded flamegraph stacks of one instrumented webserver run")
	flag.Parse()

	cfg := experiments.Figure5Config{
		Requests:           *requests,
		Connections:        *conns,
		ClientCapFactor:    *capFactor,
		Parallelism:        *parallel,
		Mechanisms:         experiments.Figure5Mechanisms,
		DisableDecodeCache: !*decodeCache,
		DisableTLB:         !*tlb,
		DisableSuperblocks: !*superblock,
		DisableChaining:    !*chain,
		DisableTraces:      !*traces,
		ChaosSeed:          *chaosSeed,
		ChaosRate:          *chaosRate,
		PolicyRegions:      *policyRegions,
		PolicySFIP:         *policySFIP,
		RequestTraces:      *reqTrace,
		Cores:              *cores,
	}
	var err error
	if cfg.FileSizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	if cfg.Workers, err = parseInts(*workers); err != nil {
		fatal(err)
	}
	for _, s := range strings.Split(*servers, ",") {
		switch strings.TrimSpace(s) {
		case "nginx":
			cfg.Servers = append(cfg.Servers, guest.StyleNginx)
		case "lighttpd":
			cfg.Servers = append(cfg.Servers, guest.StyleLighttpd)
		default:
			fatal(fmt.Errorf("unknown server style %q", s))
		}
	}

	fmt.Printf("Figure 5 — web server throughput under interposition\n")
	fmt.Printf("(%d requests, %d keep-alive connections per run; relative = vs same-config baseline)\n",
		cfg.Requests, cfg.Connections)

	begin := time.Now()
	var points []experiments.Figure5Point
	var cellMetrics []experiments.Figure5CellMetrics
	if *metricsOut != "" {
		points, cellMetrics, err = experiments.Figure5WithMetrics(cfg)
	} else {
		points, err = experiments.Figure5(cfg)
	}
	if err != nil {
		fatal(err)
	}
	wall := time.Since(begin)
	lastKey := ""
	for _, p := range points {
		key := fmt.Sprintf("%s, %d worker(s), %s files", p.Server, p.Workers, size(p.FileSize))
		if key != lastKey {
			fmt.Printf("\n%s\n", key)
			lastKey = key
		}
		capped := ""
		if p.ClientCapped {
			capped = " (client-limited)"
		}
		fmt.Printf("  %-22s %12.0f req/s   %6.1f%%%s\n", p.Mechanism, p.Throughput, 100*p.Relative, capped)
	}
	fmt.Printf("\n%d cells in %.1fs (-j %d)\n", len(points), wall.Seconds(), *parallel)

	if *out != "" {
		err := benchfmt.Write(*out, benchfmt.File{
			Name:        "figure5",
			Parallelism: *parallel,
			Cores:       *cores,
			WallSeconds: wall.Seconds(),
			Config:      cfg,
			Results:     points,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	// The per-path breakdowns go into a SEPARATE benchfmt file: the main
	// BENCH_figure5.json must stay byte-identical whether or not the
	// sweep was instrumented (CI diffs the two to prove telemetry is
	// inert).
	if *metricsOut != "" {
		err := benchfmt.Write(*metricsOut, benchfmt.File{
			Name:        "figure5-metrics",
			Parallelism: *parallel,
			Cores:       *cores,
			WallSeconds: wall.Seconds(),
			Config:      cfg,
			Results:     cellMetrics,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
	if *traceOut != "" || *profileOut != "" {
		if err := instrumentedRun(cfg, *traceOut, *profileOut, *reqTrace); err != nil {
			fatal(err)
		}
	}
}

// instrumentedRun re-runs one representative cell — lazypoline, one
// worker, the smallest swept file size — with a timeline and profiler
// attached, and writes the requested outputs. It runs after the sweep so
// the measured points are never from an instrumented kernel. With
// reqTrace the run also carries a request tracer, and its retained span
// trees are appended to the timeline trace (tracecat -requests reads
// them back out).
func instrumentedRun(cfg experiments.Figure5Config, traceOut, profileOut string, reqTrace bool) error {
	sink := &telemetry.Sink{}
	if traceOut != "" {
		sink.Timeline = telemetry.NewTimeline()
	}
	if profileOut != "" {
		sink.Profiler = telemetry.NewProfiler()
	}
	wcfg := webbench.Config{
		Style:       cfg.Servers[0],
		Workers:     1,
		FileSize:    cfg.FileSizes[0],
		Connections: cfg.Connections,
		Requests:    cfg.Requests,
		Attach:      experiments.AttachFunc(experiments.MechLazypoline),
		Costs:       cfg.Costs,
		Telemetry:   sink,
		Cores:       cfg.Cores,
	}
	var tracer *otrace.Tracer
	if reqTrace {
		tracer = otrace.New(otrace.Config{
			// The closed-loop client re-issues dropped requests rather
			// than losing them, so retain a tree per latency exemplar:
			// a drill-free webbench run still yields inspectable trees.
			LatencyThreshold: 1,
		})
		wcfg.Trace = tracer
		wcfg.TraceSeed = 1
	}
	if _, err := webbench.Run(wcfg); err != nil {
		return fmt.Errorf("instrumented run: %w", err)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		evs := sink.Timeline.Events()
		if tracer != nil {
			evs = append(evs, tracer.Export()...)
		}
		if strings.HasSuffix(traceOut, ".jsonl") {
			err = telemetry.EncodeJSONL(f, evs)
		} else {
			err = telemetry.EncodeChrome(f, evs)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", traceOut)
	}
	if profileOut != "" {
		symbols, err := webbench.Symbols(wcfg)
		if err != nil {
			return err
		}
		f, err := os.Create(profileOut)
		if err != nil {
			return err
		}
		err = sink.Profiler.WriteFolded(f, symbols)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", profileOut)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func size(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "macrobench:", err)
	os.Exit(1)
}
