package sud

import (
	"testing"

	"lazypoline/internal/asm"
	"lazypoline/internal/interpose"
	"lazypoline/internal/kernel"
	"lazypoline/internal/loader"
	"lazypoline/internal/trace"
)

func spawn(t *testing.T, k *kernel.Kernel, src string) *kernel.Task {
	t.Helper()
	p, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.FromProgram(p, "_start")
	if err != nil {
		t.Fatal(err)
	}
	task, err := k.SpawnImage(img, kernel.SpawnOpts{Name: "guest"})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

const guest = `
_start:
	mov64 rax, 39     ; getpid
	syscall
	mov rdi, rax
	mov64 rax, 60     ; exit(pid)
	syscall
`

func TestInterposesEverySyscall(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, guest)
	rec := &trace.Recorder{}
	m, err := Attach(k, task, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != task.Tgid {
		t.Errorf("exit = %d, want pid", task.ExitCode)
	}
	if m.Hits != 2 {
		t.Errorf("SIGSYS hits = %d, want 2 (every syscall traps)", m.Hits)
	}
	want := []int64{kernel.SysGetpid, kernel.SysExit}
	if d := trace.DiffNrs(rec.Nrs(), want); d != "" {
		t.Errorf("trace: %s", d)
	}
}

func TestEmulation(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, guest)
	gt := &trace.GroundTruth{}
	k.OnDispatch = gt.Hook()
	ip := interpose.FuncInterposer{
		OnEnter: func(c *interpose.Call) interpose.Action {
			if c.Nr == kernel.SysGetpid {
				c.Ret = 31337
				return interpose.Emulate
			}
			return interpose.Continue
		},
	}
	if _, err := Attach(k, task, ip); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 31337 {
		t.Errorf("exit = %d, want emulated 31337", task.ExitCode)
	}
	for _, nr := range gt.Nrs() {
		if nr == kernel.SysGetpid {
			t.Error("emulated getpid dispatched anyway")
		}
	}
}

func TestCatchesJITSyscalls(t *testing.T) {
	// SUD is exhaustive: a syscall built at run time from immediates is
	// trapped like any other.
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, `
	_start:
		mov64 rax, 9
		mov64 rdi, 0
		mov64 rsi, 4096
		mov64 rdx, 7
		mov64 r10, 0x20
		syscall
		mov r12, rax
		mov64 rcx, 0x270001
		store [r12], rcx
		mov64 rcx, 0x909090C3050F0000
		store [r12+8], rcx
		call r12
		mov rdi, rax
		mov64 rax, 60
		syscall
	`)
	rec := &trace.Recorder{}
	if _, err := Attach(k, task, rec); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != task.Tgid {
		t.Fatalf("exit = %d, want pid", task.ExitCode)
	}
	if !rec.Contains(kernel.SysGetpid) {
		t.Error("JIT getpid missing from SUD trace")
	}
}

func TestMuchSlowerThanNative(t *testing.T) {
	// Sanity check of the cost model: interposed execution is over an
	// order of magnitude slower (Table II says 20.8x on no-op syscalls).
	run := func(attach bool) uint64 {
		k := kernel.New(kernel.Config{})
		task := spawn(t, k, `
		_start:
			mov64 rcx, 20
		loop:
			push rcx
			mov64 rax, 500    ; non-existent syscall
			syscall
			pop rcx
			addi rcx, -1
			jnz loop
			mov64 rdi, 0
			mov64 rax, 60
			syscall
		`)
		if attach {
			if _, err := Attach(k, task, interpose.Dummy{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := k.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return task.CPU.Cycles
	}
	native, interposed := run(false), run(true)
	if interposed < 10*native {
		t.Errorf("SUD = %d cycles vs native %d (%.1fx): expected >10x",
			interposed, native, float64(interposed)/float64(native))
	}
}
