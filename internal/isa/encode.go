package isa

import "encoding/binary"

// Enc is a small instruction encoder used by code that emits machine code
// directly (the assembler, the trampoline builders, the tests). Methods
// append to Buf.
type Enc struct {
	Buf []byte
}

func (e *Enc) byte(b ...byte) *Enc { e.Buf = append(e.Buf, b...); return e }

func (e *Enc) imm32(v int64) *Enc {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(int32(v)))
	return e.byte(b[:]...)
}

func (e *Enc) imm64(v int64) *Enc {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return e.byte(b[:]...)
}

// Len returns the current length of the emitted code.
func (e *Enc) Len() int { return len(e.Buf) }

// Syscall emits SYSCALL (0F 05).
func (e *Enc) Syscall() *Enc { return e.byte(Byte0F, ByteSyscall) }

// Sysenter emits SYSENTER (0F 34).
func (e *Enc) Sysenter() *Enc { return e.byte(Byte0F, ByteSysent) }

// CallReg emits CALL reg (FF D0+r).
func (e *Enc) CallReg(r Reg) *Enc { return e.byte(ByteFF, ByteCallReg+byte(r)) }

// JmpReg emits JMP reg (FF E0+r).
func (e *Enc) JmpReg(r Reg) *Enc { return e.byte(ByteFF, ByteJmpReg+byte(r)) }

// Nop emits n NOP bytes.
func (e *Enc) Nop(n int) *Enc {
	for i := 0; i < n; i++ {
		e.byte(byte(OpNop))
	}
	return e
}

// Ret emits RET.
func (e *Enc) Ret() *Enc { return e.byte(byte(OpRet)) }

// Hlt emits HLT.
func (e *Enc) Hlt() *Enc { return e.byte(byte(OpHlt)) }

// Trap emits INT3.
func (e *Enc) Trap() *Enc { return e.byte(byte(OpTrap)) }

// MovImm64 emits mov64 reg, imm64.
func (e *Enc) MovImm64(r Reg, v int64) *Enc { return e.byte(byte(OpMovImm64), byte(r)).imm64(v) }

// MovImm32 emits mov32 reg, imm32 (zero-extended).
func (e *Enc) MovImm32(r Reg, v int64) *Enc { return e.byte(byte(OpMovImm32), byte(r)).imm32(v) }

// MovReg emits mov dst, src.
func (e *Enc) MovReg(dst, src Reg) *Enc { return e.byte(byte(OpMovReg), byte(dst)<<4|byte(src)) }

// Load emits load dst, [src+disp].
func (e *Enc) Load(dst, src Reg, disp int64) *Enc {
	return e.byte(byte(OpLoad), byte(dst)<<4|byte(src)).imm32(disp)
}

// Store emits store [dst+disp], src.
func (e *Enc) Store(dst Reg, disp int64, src Reg) *Enc {
	return e.byte(byte(OpStore), byte(dst)<<4|byte(src)).imm32(disp)
}

// LoadB emits loadb dst, [src+disp].
func (e *Enc) LoadB(dst, src Reg, disp int64) *Enc {
	return e.byte(byte(OpLoadB), byte(dst)<<4|byte(src)).imm32(disp)
}

// StoreB emits storeb [dst+disp], src.
func (e *Enc) StoreB(dst Reg, disp int64, src Reg) *Enc {
	return e.byte(byte(OpStoreB), byte(dst)<<4|byte(src)).imm32(disp)
}

// Load32 emits load32 dst, [src+disp].
func (e *Enc) Load32(dst, src Reg, disp int64) *Enc {
	return e.byte(byte(OpLoad32), byte(dst)<<4|byte(src)).imm32(disp)
}

// Add emits add dst, src.
func (e *Enc) Add(dst, src Reg) *Enc { return e.byte(byte(OpAdd), byte(dst)<<4|byte(src)) }

// Sub emits sub dst, src.
func (e *Enc) Sub(dst, src Reg) *Enc { return e.byte(byte(OpSub), byte(dst)<<4|byte(src)) }

// Mul emits mul dst, src.
func (e *Enc) Mul(dst, src Reg) *Enc { return e.byte(byte(OpMul), byte(dst)<<4|byte(src)) }

// And emits and dst, src.
func (e *Enc) And(dst, src Reg) *Enc { return e.byte(byte(OpAnd), byte(dst)<<4|byte(src)) }

// Or emits or dst, src.
func (e *Enc) Or(dst, src Reg) *Enc { return e.byte(byte(OpOr), byte(dst)<<4|byte(src)) }

// Xor emits xor dst, src.
func (e *Enc) Xor(dst, src Reg) *Enc { return e.byte(byte(OpXor), byte(dst)<<4|byte(src)) }

// AddImm emits addi reg, imm32.
func (e *Enc) AddImm(r Reg, v int64) *Enc { return e.byte(byte(OpAddImm), byte(r)).imm32(v) }

// Cmp emits cmp a, b.
func (e *Enc) Cmp(a, b Reg) *Enc { return e.byte(byte(OpCmp), byte(a)<<4|byte(b)) }

// CmpImm emits cmpi reg, imm32.
func (e *Enc) CmpImm(r Reg, v int64) *Enc { return e.byte(byte(OpCmpImm), byte(r)).imm32(v) }

// ShlImm emits shli reg, imm8.
func (e *Enc) ShlImm(r Reg, v int64) *Enc { return e.byte(byte(OpShlImm), byte(r), byte(v)) }

// ShrImm emits shri reg, imm8.
func (e *Enc) ShrImm(r Reg, v int64) *Enc { return e.byte(byte(OpShrImm), byte(r), byte(v)) }

// Jmp emits jmp rel32 where rel is relative to the next instruction.
func (e *Enc) Jmp(rel int64) *Enc { return e.byte(byte(OpJmp)).imm32(rel) }

// Jz emits jz rel32.
func (e *Enc) Jz(rel int64) *Enc { return e.byte(byte(OpJz)).imm32(rel) }

// Jnz emits jnz rel32.
func (e *Enc) Jnz(rel int64) *Enc { return e.byte(byte(OpJnz)).imm32(rel) }

// Jl emits jl rel32 (signed less-than).
func (e *Enc) Jl(rel int64) *Enc { return e.byte(byte(OpJl)).imm32(rel) }

// Jg emits jg rel32 (signed greater-than).
func (e *Enc) Jg(rel int64) *Enc { return e.byte(byte(OpJg)).imm32(rel) }

// Jle emits jle rel32.
func (e *Enc) Jle(rel int64) *Enc { return e.byte(byte(OpJle)).imm32(rel) }

// Jge emits jge rel32.
func (e *Enc) Jge(rel int64) *Enc { return e.byte(byte(OpJge)).imm32(rel) }

// Call emits call rel32.
func (e *Enc) Call(rel int64) *Enc { return e.byte(byte(OpCall)).imm32(rel) }

// Push emits push reg.
func (e *Enc) Push(r Reg) *Enc { return e.byte(byte(OpPush), byte(r)) }

// Pop emits pop reg.
func (e *Enc) Pop(r Reg) *Enc { return e.byte(byte(OpPop), byte(r)) }

// Lea emits lea reg, [rip+disp32].
func (e *Enc) Lea(r Reg, disp int64) *Enc { return e.byte(byte(OpLea), byte(r)).imm32(disp) }

// MovQ2X emits movq2x xmm, reg.
func (e *Enc) MovQ2X(x XReg, r Reg) *Enc { return e.byte(byte(OpMovQ2X), byte(x)<<4|byte(r)) }

// MovX2Q emits movx2q reg, xmm.
func (e *Enc) MovX2Q(r Reg, x XReg) *Enc { return e.byte(byte(OpMovX2Q), byte(r)<<4|byte(x)) }

// Punpck emits punpck xmm.
func (e *Enc) Punpck(x XReg) *Enc { return e.byte(byte(OpPunpck), byte(x)) }

// MovupsStore emits movups_st [reg+disp], xmm.
func (e *Enc) MovupsStore(r Reg, disp int64, x XReg) *Enc {
	return e.byte(byte(OpMovupsStore), byte(x)<<4|byte(r)).imm32(disp)
}

// MovupsLoad emits movups_ld xmm, [reg+disp].
func (e *Enc) MovupsLoad(x XReg, r Reg, disp int64) *Enc {
	return e.byte(byte(OpMovupsLoad), byte(x)<<4|byte(r)).imm32(disp)
}

// Xorps emits xorps dst, src.
func (e *Enc) Xorps(dst, src XReg) *Enc { return e.byte(byte(OpXorps), byte(dst)<<4|byte(src)) }

// Fld emits fld reg.
func (e *Enc) Fld(r Reg) *Enc { return e.byte(byte(OpFld), byte(r)) }

// Fst emits fst reg.
func (e *Enc) Fst(r Reg) *Enc { return e.byte(byte(OpFst), byte(r)) }

// RdCycle emits rdcycle reg.
func (e *Enc) RdCycle(r Reg) *Enc { return e.byte(byte(OpRdCycle), byte(r)) }

// GsLoad emits gsload reg, [gs:disp].
func (e *Enc) GsLoad(r Reg, disp int64) *Enc { return e.byte(byte(OpGsLoad), byte(r)).imm32(disp) }

// GsStore emits gsstore [gs:disp], reg.
func (e *Enc) GsStore(disp int64, r Reg) *Enc { return e.byte(byte(OpGsStore), byte(r)).imm32(disp) }

// GsLoadB emits gsloadb reg, [gs:disp].
func (e *Enc) GsLoadB(r Reg, disp int64) *Enc { return e.byte(byte(OpGsLoadB), byte(r)).imm32(disp) }

// GsStoreB emits gsstoreb [gs:disp], reg.
func (e *Enc) GsStoreB(disp int64, r Reg) *Enc {
	return e.byte(byte(OpGsStoreB), byte(r)).imm32(disp)
}

// GsStoreBI emits gsstorebi [gs:disp], imm8.
func (e *Enc) GsStoreBI(disp int64, v byte) *Enc {
	return e.byte(byte(OpGsStoreBI), v).imm32(disp)
}

// GsPush emits gspush [gs:disp].
func (e *Enc) GsPush(disp int64) *Enc { return e.byte(byte(OpGsPush)).imm32(disp) }

// GsAddI emits gsaddi [gs:disp], imm32.
func (e *Enc) GsAddI(disp, v int64) *Enc { return e.byte(byte(OpGsAddI)).imm32(disp).imm32(v) }

// GsMovB emits gsmovb [gs:dst], [gs:src].
func (e *Enc) GsMovB(dst, src int64) *Enc { return e.byte(byte(OpGsMovB)).imm32(dst).imm32(src) }

// GsMov emits gsmov [gs:dst], [gs:src].
func (e *Enc) GsMov(dst, src int64) *Enc { return e.byte(byte(OpGsMov)).imm32(dst).imm32(src) }

// GsLoadIdxB emits gsloadidxb dst, [gs:idxreg].
func (e *Enc) GsLoadIdxB(dst, idx Reg) *Enc {
	return e.byte(byte(OpGsLoadIdxB), byte(dst)<<4|byte(idx))
}

// GsLoadIdx emits gsloadidx dst, [gs:idxreg+disp]. It does not set flags.
func (e *Enc) GsLoadIdx(dst, idx Reg, disp int64) *Enc {
	return e.byte(byte(OpGsLoadIdx), byte(dst)<<4|byte(idx)).imm32(disp)
}

// Xchg emits xchg [mem], val.
func (e *Enc) Xchg(mem, val Reg) *Enc { return e.byte(byte(OpXchg), byte(mem)<<4|byte(val)) }

// Pause emits pause.
func (e *Enc) Pause() *Enc { return e.byte(byte(OpPause)) }

// Xsave emits xsave [reg] — save extended state to the address in reg.
func (e *Enc) Xsave(r Reg) *Enc { return e.byte(byte(OpXsave), byte(r)) }

// Xrstor emits xrstor [reg] — restore extended state from the address in reg.
func (e *Enc) Xrstor(r Reg) *Enc { return e.byte(byte(OpXrstor), byte(r)) }

// Wrpkru emits wrpkru reg.
func (e *Enc) Wrpkru(r Reg) *Enc { return e.byte(byte(OpWrpkru), byte(r)) }

// Rdpkru emits rdpkru reg.
func (e *Enc) Rdpkru(r Reg) *Enc { return e.byte(byte(OpRdpkru), byte(r)) }

// Hcall emits hcall id.
func (e *Enc) Hcall(id int64) *Enc { return e.byte(byte(OpHcall)).imm32(id) }
