package cpu

// Superblock execution: the scheduler hands the CPU a whole budget of
// instructions (the rest of the quantum) and StepBlock retires the
// straight-line body of each decoded block in a tight loop, re-entering
// the per-instruction Step dispatch only at block boundaries that are
// not chained. Events — syscalls, faults, traps, hcalls, halt — end the
// batch immediately, so the kernel observes exactly the same stopping
// points as per-Step scheduling: signal checks, quantum expiry and chaos
// injection all happen between the same instructions either way.
//
// Self-modifying code stays exact because the execution core re-checks
// the address space's code-mutation counter before every instruction —
// the same lock-free load the decode cache's sequential hit path
// performs — and revalidates page generations under the lock the moment
// it changes. Chained transitions and traces (chain.go, trace.go) add
// no trust: they are routing shortcuts whose targets get the identical
// validation.

// SetSuperblocks enables or disables superblock execution. Like the
// decode cache and the D-TLB it is semantically invisible, so turning it
// off only exists for differential testing and measurement.
func (c *CPU) SetSuperblocks(on bool) { c.superblock = on }

// SuperblocksEnabled reports whether superblock execution is effective.
// The batching loop needs the decode cache's block bodies to run, so
// with the cache off this reports false even when the superblock toggle
// itself is on — reported config always reflects effective state.
func (c *CPU) SuperblocksEnabled() bool { return c.superblock && c.cache != nil }

// StepBlock executes up to max instructions, stopping early at the first
// non-EvNone event. It returns the event (EvNone means the budget was
// exhausted without one), the number of instructions retired, and the
// cycle counter value from just before the final instruction.
//
// The third value exists for the kernel clock: the per-Step scheduler
// loop refreshed its max-cycles clock after every instruction, so when
// an event instruction entered the kernel the clock held the cycle count
// through the *previous* instruction. A batching scheduler replays that
// exactly by folding in the pre-event value (when the batch retired more
// than one instruction) before handling the event. Nothing else observes
// the clock mid-batch, so batching stays semantically invisible — and
// the contract holds across chained transitions and trace execution,
// which thread the same pre pointer through every instruction they
// retire.
func (c *CPU) StepBlock(max uint64) (Event, uint64, uint64) {
	if max == 0 {
		return EvNone, 0, c.Cycles
	}
	if !c.superblock || c.cache == nil {
		pre := c.Cycles
		return c.Step(), 1, pre
	}
	var steps uint64
	pre := c.Cycles
	for {
		// Chained core first: it picks up from the decode cache's current
		// position and runs block→block until an event, the budget, or a
		// transition it cannot resolve (miss, invalidation, un-chained
		// target).
		if ev, done := c.runChained(max, &steps, &pre); done {
			return ev, steps, pre
		}
		// The chained core can exhaust the budget on a block's last
		// instruction and still report done=false (the next transition is
		// unresolved); the budget is a hard ceiling, so stop before the
		// dispatched Step rather than overshoot by one.
		if steps >= max {
			return EvNone, steps, pre
		}
		// One dispatched Step resolves the transition — full cachedInst
		// lookup (planting a chain link if the previous block completed) or
		// the uncached path.
		pre = c.Cycles
		ev := c.Step()
		steps++
		if ev != EvNone || steps >= max {
			return ev, steps, pre
		}
	}
}
