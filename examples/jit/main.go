// JIT exhaustiveness demo (paper §V-A): the same just-in-time-compiling
// guest runs under zpoline (static rewriting), SUD, and lazypoline. The
// program emits a getpid syscall instruction at run time — from
// immediates, so no scanner could have seen the 0F 05 bytes — and calls
// it. zpoline misses it; SUD and lazypoline interpose it.
//
//	go run ./examples/jit
package main

import (
	"fmt"
	"log"
	"strings"

	"lazypoline/internal/core"
	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/sud"
	"lazypoline/internal/trace"
	"lazypoline/internal/zpoline"
)

func main() {
	fmt.Println("compiling and running under three mechanisms:")
	fmt.Printf("source (%s):\n%s\n", guest.JITSourcePath, indent(guest.JITSource))

	for _, mech := range []string{"zpoline", "SUD", "lazypoline"} {
		rec, task, err := runUnder(mech)
		if err != nil {
			log.Fatalf("%s: %v", mech, err)
		}
		var names []string
		for _, nr := range rec.Nrs() {
			names = append(names, kernel.SyscallName(nr))
		}
		fmt.Printf("%-11s trace: %s\n", mech, strings.Join(names, ", "))
		if rec.Contains(kernel.SysGetpid) {
			fmt.Printf("%-11s   -> interposed the JIT-generated getpid (exit=%d)\n", "", task.ExitCode)
		} else {
			fmt.Printf("%-11s   -> MISSED the JIT-generated getpid (it still ran: exit=%d)\n", "", task.ExitCode)
		}
	}
}

func runUnder(mech string) (*trace.Recorder, *kernel.Task, error) {
	k := kernel.New(kernel.Config{})
	if err := k.FS.MkdirAll("/src", 0o755); err != nil {
		return nil, nil, err
	}
	if err := k.FS.WriteFile(guest.JITSourcePath, []byte(guest.JITSource), 0o644); err != nil {
		return nil, nil, err
	}
	prog, err := guest.JIT()
	if err != nil {
		return nil, nil, err
	}
	task, err := prog.Spawn(k)
	if err != nil {
		return nil, nil, err
	}
	rec := &trace.Recorder{}
	switch mech {
	case "zpoline":
		_, err = zpoline.Attach(k, task, rec, zpoline.Options{})
	case "SUD":
		_, err = sud.Attach(k, task, rec)
	case "lazypoline":
		_, err = core.Attach(k, task, rec, core.Options{})
	}
	if err != nil {
		return nil, nil, err
	}
	if err := k.Run(10_000_000); err != nil {
		return nil, nil, err
	}
	return rec, task, nil
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n    ")
}
