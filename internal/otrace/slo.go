package otrace

// Virtual-time SLO engine: windowed availability/latency objectives
// over the generator's offered load, with multi-window burn-rate
// alerts. The shape follows the SRE workbook's paired-window rule ("5m
// AND 1h burning >14.4x"), but windows are virtual cycles scaled to
// the run, so the whole engine is a pure function of the request
// outcome sequence — same (config, seed) ⇒ identical alerts, byte for
// byte. The fleet driver feeds it every finished request in completion
// order and asserts the report pre/mid/post-drill.

import "sort"

// BurnRule is one multi-window burn-rate alert: fire when the error
// budget burns at >= Threshold x over BOTH windows; resolve when the
// short window drops back below.
type BurnRule struct {
	Name      string  `json:"name"`
	Short     uint64  `json:"short_cycles"` // fast window (detects)
	Long      uint64  `json:"long_cycles"`  // slow window (confirms)
	Threshold float64 `json:"threshold"`    // burn-rate multiple
}

// SLOConfig defines the objective. A request is "good" when it
// completed within LatencyObjective cycles; everything else (lost or
// slow) spends error budget. Target is the availability goal the
// budget derives from.
type SLOConfig struct {
	LatencyObjective uint64     `json:"objective_cycles"`
	Target           float64    `json:"target"`
	Rules            []BurnRule `json:"rules"`
}

// DefaultBurnRules scales the classic SRE 5m/1h + 30m/6h pairs to a
// run of the given virtual duration.
func DefaultBurnRules(duration uint64) []BurnRule {
	return []BurnRule{
		{Name: "page", Short: duration / 20, Long: duration / 5, Threshold: 14.4},
		{Name: "ticket", Short: duration / 10, Long: duration / 2, Threshold: 6},
	}
}

// Alert is one fired burn-rate alert. ResolvedAt is 0 while active at
// end of run.
type Alert struct {
	Rule       string  `json:"rule"`
	FiredAt    uint64  `json:"fired_at"`
	ResolvedAt uint64  `json:"resolved_at"`
	Burn       float64 `json:"burn"` // short-window burn at fire time
}

// SLOPhase summarises one drill phase (pre/mid/post).
type SLOPhase struct {
	Name    string  `json:"phase"`
	Good    int     `json:"good"`
	Bad     int     `json:"bad"`
	MaxBurn float64 `json:"max_burn"` // peak short-window burn (rule 0) in phase
}

// SLOReport is the end-of-run summary the fleet embeds in its Result.
type SLOReport struct {
	Objective uint64     `json:"objective_cycles"`
	Target    float64    `json:"target"`
	Good      int        `json:"good"`
	Bad       int        `json:"bad"`
	Phases    []SLOPhase `json:"phases"`
	Alerts    []Alert    `json:"alerts"`
}

// SLOEngine accumulates request outcomes in completion-time order and
// evaluates the burn rules after each one. Not safe for concurrent
// use; the fleet driver is single-goroutine.
type SLOEngine struct {
	cfg SLOConfig

	times     []uint64  // completion times, nondecreasing
	badPrefix []int     // badPrefix[i] = bad outcomes among the first i
	burns     []float64 // rule-0 short-window burn after each record

	active []bool // per-rule alert currently firing
	alerts []Alert
}

// NewSLOEngine builds an engine; Target defaults to 0.99.
func NewSLOEngine(cfg SLOConfig) *SLOEngine {
	if cfg.Target == 0 {
		cfg.Target = 0.99
	}
	return &SLOEngine{cfg: cfg, badPrefix: []int{0}, active: make([]bool, len(cfg.Rules))}
}

// Record feeds one finished request. latency is ignored for lost
// requests (they are always bad). Times must be nondecreasing — the
// driver completes requests in virtual-time order.
func (e *SLOEngine) Record(t, latency uint64, lost bool) {
	bad := lost || latency > e.cfg.LatencyObjective
	e.times = append(e.times, t)
	last := e.badPrefix[len(e.badPrefix)-1]
	if bad {
		last++
	}
	e.badPrefix = append(e.badPrefix, last)

	var shortBurn0 float64
	for i, r := range e.cfg.Rules {
		short := e.burnRate(t, r.Short)
		long := e.burnRate(t, r.Long)
		if i == 0 {
			shortBurn0 = short
		}
		switch {
		case !e.active[i] && short >= r.Threshold && long >= r.Threshold:
			e.active[i] = true
			e.alerts = append(e.alerts, Alert{Rule: r.Name, FiredAt: t, Burn: short})
		case e.active[i] && short < r.Threshold:
			e.active[i] = false
			for j := len(e.alerts) - 1; j >= 0; j-- {
				if e.alerts[j].Rule == r.Name && e.alerts[j].ResolvedAt == 0 {
					e.alerts[j].ResolvedAt = t
					break
				}
			}
		}
	}
	e.burns = append(e.burns, shortBurn0)
}

// burnRate is (error rate over the trailing window) / (error budget).
func (e *SLOEngine) burnRate(now, window uint64) float64 {
	lo := uint64(0)
	if now > window {
		lo = now - window
	}
	i := sort.Search(len(e.times), func(k int) bool { return e.times[k] >= lo })
	total := len(e.times) - i
	if total == 0 {
		return 0
	}
	bad := e.badPrefix[len(e.times)] - e.badPrefix[i]
	budget := 1 - e.cfg.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return float64(bad) / float64(total) / budget
}

// Report slices the run into pre/mid/post phases at the given
// boundaries (matching the fleet's drill accounting) and returns the
// deterministic summary.
func (e *SLOEngine) Report(preEnd, midEnd uint64) SLOReport {
	rep := SLOReport{
		Objective: e.cfg.LatencyObjective,
		Target:    e.cfg.Target,
		Good:      len(e.times) - e.badPrefix[len(e.times)],
		Bad:       e.badPrefix[len(e.times)],
		Alerts:    append([]Alert(nil), e.alerts...),
	}
	bounds := []struct {
		name   string
		lo, hi uint64
	}{
		{"pre", 0, preEnd},
		{"mid", preEnd, midEnd},
		{"post", midEnd, ^uint64(0)},
	}
	for _, b := range bounds {
		p := SLOPhase{Name: b.name}
		for i, t := range e.times {
			if t < b.lo || t >= b.hi {
				continue
			}
			if e.badPrefix[i+1] > e.badPrefix[i] {
				p.Bad++
			} else {
				p.Good++
			}
			if e.burns[i] > p.MaxBurn {
				p.MaxBurn = e.burns[i]
			}
		}
		rep.Phases = append(rep.Phases, p)
	}
	return rep
}
