package mem

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSpace builds the fixed layout every FuzzAccess execution runs
// against: a permission obstacle course of mapped, read-only, unmapped,
// pkey-tagged and executable pages so that arbitrary (addr, len) pairs
// cross every kind of boundary.
//
//	0x1000 RW      0x2000 R       0x3000 (hole)
//	0x4000 RW+pkey 0x5000 RWX     0x6000 (end)
func fuzzSpace(t testing.TB) *AddressSpace {
	as := NewAddressSpace()
	mapOne := func(addr uint64, prot Prot) {
		if err := as.MapFixed(addr, PageSize, prot); err != nil {
			t.Fatal(err)
		}
	}
	mapOne(0x1000, ProtRW)
	mapOne(0x2000, ProtRead)
	mapOne(0x4000, ProtRW)
	mapOne(0x5000, ProtRWX)
	if err := as.SetPkey(0x4000, PageSize, 3); err != nil {
		t.Fatal(err)
	}
	// Deterministic fill so reads have content to disagree about.
	fill := make([]byte, PageSize)
	for i := range fill {
		fill[i] = byte(i * 7)
	}
	for _, base := range []uint64{0x1000, 0x2000, 0x4000, 0x5000} {
		if err := as.WriteForce(base, fill); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

// oracleRead performs the same access byte-at-a-time — the obviously
// correct reference the single-walk implementation must match, including
// partial-transfer prefixes and the first-bad-byte fault address.
func oracleRead(as *AddressSpace, addr uint64, dst []byte) error {
	for i := range dst {
		if err := as.ReadAt(addr+uint64(i), dst[i:i+1]); err != nil {
			return err
		}
	}
	return nil
}

func oracleWrite(as *AddressSpace, addr uint64, src []byte) error {
	for i := range src {
		if err := as.WriteAt(addr+uint64(i), src[i:i+1]); err != nil {
			return err
		}
	}
	return nil
}

// fuzzSnapshot copies the readable window of the obstacle course for
// comparing post-write memory state.
func fuzzSnapshot(t testing.TB, as *AddressSpace) []byte {
	out := make([]byte, 0, 4*PageSize)
	buf := make([]byte, PageSize)
	for _, base := range []uint64{0x1000, 0x2000, 0x4000, 0x5000} {
		if err := as.ReadForce(base, buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf...)
	}
	return out
}

func faultAddr(t testing.TB, err error) (uint64, bool) {
	if err == nil {
		return 0, false
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is not a mem.Fault: %v", err)
	}
	return f.Addr, true
}

// FuzzAccess cross-checks the single-walk multi-page ReadAt/WriteAt
// against the byte-at-a-time oracle: same fault address (first
// inaccessible byte), same partial-transfer prefix, same memory state,
// under arbitrary sizes, alignments and PKRU values.
func FuzzAccess(f *testing.F) {
	f.Add(uint64(0x1ffc), uint16(16), uint32(0), byte(1), false)   // RW→R crossing
	f.Add(uint64(0x2ff0), uint16(64), uint32(0), byte(2), false)   // into the hole
	f.Add(uint64(0x4ffb), uint16(10), uint32(0), byte(3), true)    // pkey→RWX crossing
	f.Add(uint64(0x4000), uint16(8), uint32(1<<6), byte(4), true)  // pkey 3 AD set
	f.Add(uint64(0x4008), uint16(8), uint32(1<<7), byte(5), false) // pkey 3 WD set
	f.Add(uint64(0x1000), uint16(0x3001), uint32(0), byte(6), false)
	f.Fuzz(func(t *testing.T, addr uint64, n uint16, pkru uint32, seed byte, write bool) {
		// Keep the access inside the course (plus sloppy margins so the
		// hole and the unmapped tail are reachable).
		addr = 0x800 + addr%(6*PageSize)
		length := int(n) % (2*PageSize + 17)

		got := fuzzSpace(t)
		want := fuzzSpace(t)
		got.SetActivePKRU(pkru)
		want.SetActivePKRU(pkru)

		if write {
			src := make([]byte, length)
			for i := range src {
				src[i] = seed + byte(i)
			}
			gotErr := got.WriteAt(addr, src)
			wantErr := oracleWrite(want, addr, src)
			ga, gok := faultAddr(t, gotErr)
			wa, wok := faultAddr(t, wantErr)
			if gok != wok || ga != wa {
				t.Fatalf("WriteAt(%#x, %d) fault = (%#x,%v), oracle (%#x,%v)", addr, length, ga, gok, wa, wok)
			}
			if gs, ws := fuzzSnapshot(t, got), fuzzSnapshot(t, want); !bytes.Equal(gs, ws) {
				t.Fatalf("WriteAt(%#x, %d): memory state diverges from oracle", addr, length)
			}
		} else {
			gotDst := make([]byte, length)
			wantDst := make([]byte, length)
			gotErr := got.ReadAt(addr, gotDst)
			wantErr := oracleRead(want, addr, wantDst)
			ga, gok := faultAddr(t, gotErr)
			wa, wok := faultAddr(t, wantErr)
			if gok != wok || ga != wa {
				t.Fatalf("ReadAt(%#x, %d) fault = (%#x,%v), oracle (%#x,%v)", addr, length, ga, gok, wa, wok)
			}
			if !bytes.Equal(gotDst, wantDst) {
				t.Fatalf("ReadAt(%#x, %d): returned bytes diverge from oracle", addr, length)
			}
		}
	})
}
