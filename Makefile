# Development entry points. `make ci` is the gate every change must pass:
# vet + build + the full test suite under the race detector (the parallel
# experiment harness is exercised by tests, so -race guards the per-cell
# isolation contract).

.PHONY: ci test bench snapshots chaos-smoke profile-smoke tlb-smoke chain-smoke policy-smoke fleet-smoke obs-smoke par-smoke fuzz

ci:
	./scripts/ci.sh

test:
	go test ./...

# Fast chaos-determinism check: the invariance suite plus the kernel's
# injection-semantics tests (scripts/ci.sh runs the cross-binary diffs).
chaos-smoke:
	go test ./internal/experiments -run 'TestChaosInvariance' -count 1
	go test ./internal/kernel -run 'TestChaos|TestBlockingRead|TestSigactionReportsFlags' -count 1

# Quick telemetry sanity pass: profile the microbenchmark under
# lazypoline, run the inertness suite's fastest matrix, and show the
# hottest folded stacks (see the EXPERIMENTS.md telemetry walkthrough).
profile-smoke:
	go test ./internal/experiments -run 'TestTelemetryInvarianceMicrobench' -count 1
	go run ./cmd/runsim -builtin microbench -mech lazypoline -trace=false \
		-stats=false -profile-out /tmp/profile_smoke.folded
	head -10 /tmp/profile_smoke.folded

# Fast data-fast-path check: the TLB/superblock unit tests under -race,
# the cheapest invariance matrix, and a small cpubench run that must
# clear the fast-path speedup floor (scripts/ci.sh runs the full gate).
tlb-smoke:
	go test -race ./internal/cpu ./internal/mem -count 1
	go test ./internal/experiments -run 'TestTLBInvariance(Microbench|SMC|Telemetry)' -count 1
	go run ./cmd/cpubench -steps 1000000 -iters 20000 -memsweeps 200 -repeat 2 -out /tmp/tlb_smoke_BENCH_cpu.json

# Fast chaining/trace check: the chain and trace unit tests under -race,
# the cheapest chain-invariance matrix, and a cpubench run that must
# clear the 4.0x raw-loop floor the chained fast path sustains.
chain-smoke:
	go test -race ./internal/cpu -run 'TestChain|TestStepBlock|TestSMC|TestDecodeCache|TestFused' -count 1
	go test ./internal/experiments -run 'TestChainInvariance(Microbench|SMC|Telemetry)' -count 1
	go run ./cmd/cpubench -steps 1000000 -iters 20000 -memsweeps 200 -repeat 2 -minrawloop 4.0 -out /tmp/chain_smoke_BENCH_cpu.json

# Fast syscall-policy check: the kernel policy and seccomp-hardening
# tests, the invariance matrix, and one attack demo per layer
# (scripts/ci.sh runs the full cross-mechanism diffs).
policy-smoke:
	go test ./internal/kernel -run 'TestPolicy|TestSeccompUnknown|TestSeccompFaulting|TestSeccompPrecedence|TestChaosRetryInjection' -count 1
	go test ./internal/experiments -run 'TestPolicyInvariance' -count 1
	go run ./cmd/runsim -builtin attack-jit -mech lazypoline -policy regions -trace=false -stats=false
	go run ./cmd/runsim -builtin attack-seq -mech sud -policy sfip -trace=false -stats=false

# Fast fleet-robustness check: the balancer/generator/drill suite, the
# kill-drill acceptance gate at sweep scale, and a two-drill fleetbench
# run (scripts/ci.sh adds the same-seed snapshot diff).
fleet-smoke:
	go test ./internal/fleet -count 1
	go test ./internal/experiments -run 'TestFleetBench' -count 1
	go run ./cmd/fleetbench -requests 80 -drills none,kill -mechs baseline,lazypoline \
		-out /tmp/fleet_smoke_BENCH_fleet.json

# Fast observability check: the tracer / SLO / exemplar unit suites
# under -race, the fleet trace acceptance gate (inertness, determinism,
# kill-drill exemplar), and one traced fleetbench cell rendered through
# tracecat's request-tree view (scripts/ci.sh adds the inertness diffs).
obs-smoke:
	go test -race ./internal/otrace -count 1
	go test -race ./internal/telemetry -run 'TestHistogramExemplar' -count 1
	go test ./internal/fleet -run 'TestFleetTrace' -count 1
	go run ./cmd/fleetbench -requests 60 -rate 200 -drills kill -mechs lazypoline \
		-out /tmp/obs_smoke_BENCH_fleet.json -trace-out /tmp/obs_smoke_trace.jsonl \
		-slo-out /tmp/obs_smoke_slo.txt
	go run ./cmd/tracecat -requests -o /tmp/obs_smoke_trees.txt /tmp/obs_smoke_trace.jsonl
	head -25 /tmp/obs_smoke_trees.txt

# Fast parallel-scheduler check (DESIGN.md §15): the kernel round/shard
# suite and the webbench/fleet cross-core byte-identity suites under
# -race, then a small parbench sweep that must keep -cores N
# byte-identical while actually engaging the shards. The -minscale
# ratchet only binds on hosts with >= 8 cores (parbench skips it and
# says so on smaller machines).
par-smoke:
	go test -race ./internal/kernel -run 'TestRound|TestMidRound|TestPlanShards|TestParallel|TestRunParks|TestRunDeadlock' -count 1
	go test -race ./internal/webbench -run 'TestCores' -count 1
	go test -race ./internal/fleet -run 'TestFleetCores' -count 1
	go run ./cmd/parbench -requests 300 -conns 8 -workers 4 -mechs baseline,lazypoline \
		-cores 1,2,4 -repeat 2 -minscale 2.5 -out /tmp/par_smoke_BENCH_parallel.json

# Longer fuzz of the instruction decoder (CI runs a few seconds of it).
fuzz:
	go test ./internal/isa/ -run '^$$' -fuzz FuzzDecode -fuzztime 30s
	go test ./internal/mem/ -run '^$$' -fuzz FuzzAccess -fuzztime 30s

bench:
	go test -bench . -benchtime 1x ./...

# Regenerate the machine-readable benchmark snapshots (BENCH_*.json).
snapshots:
	go run ./cmd/macrobench -out BENCH_figure5.json > figure5_output.txt
	go run ./cmd/microbench -out BENCH_table2.json
	go run ./cmd/exhaustive -out BENCH_exhaustive.json
	go run ./cmd/cpubench -out BENCH_cpu.json
	go run ./cmd/policybench -out BENCH_policy.json
	go run ./cmd/fleetbench -out BENCH_fleet.json
	go run ./cmd/parbench -minscale 2.5 -out BENCH_parallel.json
