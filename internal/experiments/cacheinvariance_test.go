package experiments

// The decoded-instruction cache must be semantically invisible: every
// guest, under every interposition mechanism, must produce byte-identical
// syscall traces, interposer observations, console output, exit codes and
// cycle counts whether the cache is enabled or disabled. These tests run
// the full differential matrix — the coreutils on both libc variants, the
// JIT workload, the microbenchmark loop and both web servers — and a
// dedicated self-modifying-code check covering lazypoline's slow-path
// site rewriting and the JIT's direct stores to freshly minted code.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
	"lazypoline/internal/webbench"
)

// invarianceMechs is the complete mechanism registry, including the
// ablation variants — "every mechanism" in the acceptance criteria.
var invarianceMechs = []string{
	MechBaseline, MechBaselineSUD, MechZpoline, MechLazypolineNX,
	MechLazypoline, MechLazypolineMPK, MechSUD, MechSeccompUser, MechPtrace,
}

// tracingMechs is the subset with a tracing attach; for these the
// interposer-observed trace is part of the compared outcome.
var tracingMechs = map[string]bool{
	MechZpoline: true, MechLazypolineNX: true, MechLazypoline: true,
	MechSUD: true, MechSeccompUser: true, MechPtrace: true,
}

// runOutcome is everything observable from one guest run. Two runs are
// equivalent iff their runOutcomes are byte-identical.
type runOutcome struct {
	Exit    int
	Cycles  string // per-task cycle counts, in task order
	Console string
	Ground  string // kernel dispatch-level trace, with arguments
	Trace   string // interposer-observed trace ("" when not traced)
}

func (o runOutcome) String() string {
	return fmt.Sprintf("exit=%d\ncycles=%s\nconsole=%q\nground:\n%s\ntrace:\n%s",
		o.Exit, o.Cycles, o.Console, o.Ground, o.Trace)
}

// groundHook records the dispatch-level ground truth including task IDs
// and full argument vectors — stricter than trace.GroundTruth, which
// keeps only syscall numbers.
func groundHook(sb *strings.Builder) func(*kernel.Task, int64, [6]uint64) {
	return func(t *kernel.Task, nr int64, args [6]uint64) {
		fmt.Fprintf(sb, "%d %s %x\n", t.ID, kernel.SyscallName(nr), args)
	}
}

// finishOutcome assembles the outcome after k.Run completed.
func finishOutcome(k *kernel.Kernel, main *kernel.Task, ground *strings.Builder, rec *trace.Recorder) runOutcome {
	var cycles strings.Builder
	for _, t := range k.Tasks() {
		fmt.Fprintf(&cycles, "%d:%d ", t.ID, t.CPU.Cycles)
	}
	o := runOutcome{
		Exit:    main.ExitCode,
		Cycles:  cycles.String(),
		Console: string(main.ConsoleOut),
		Ground:  ground.String(),
	}
	if rec != nil {
		var tr strings.Builder
		for _, e := range rec.Entries() {
			fmt.Fprintf(&tr, "%s\n", e.String())
		}
		o.Trace = tr.String()
	}
	return o
}

// runDifferential executes the run builder cache-on and cache-off and
// fails the test unless the outcomes are byte-identical. It also checks
// that the cache actually engaged when enabled (a vacuous pass with the
// cache silently off would prove nothing).
func runDifferential(t *testing.T, run func(t *testing.T, disableCache bool) (runOutcome, *kernel.Task)) {
	t.Helper()
	on, onTask := run(t, false)
	off, offTask := run(t, true)
	if on != off {
		t.Errorf("cache-on and cache-off outcomes differ:\n--- cache on ---\n%s\n--- cache off ---\n%s\nfirst diff: %s",
			on, off, firstDiff(on.String(), off.String()))
	}
	if s := onTask.CPU.DecodeCacheStats(); s.Hits == 0 {
		t.Error("cache-on run recorded zero decode-cache hits; the differential is vacuous")
	}
	if s := offTask.CPU.DecodeCacheStats(); s.Hits != 0 || s.Builds != 0 {
		t.Errorf("cache-off run used the decode cache: %+v", s)
	}
}

func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("at byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("lengths %d vs %d", len(a), len(b))
}

// attachForTrace installs the mechanism, with a Recorder when the
// mechanism supports tracing and a Dummy interposer otherwise.
func attachForTrace(mech string, k *kernel.Kernel, task *kernel.Task, preRewrite bool) (*trace.Recorder, error) {
	if tracingMechs[mech] {
		rec := &trace.Recorder{}
		return rec, attachTracing(mech, k, task, rec)
	}
	return nil, attach(mech, k, task, preRewrite)
}

func TestCacheInvarianceMicrobench(t *testing.T) {
	for _, mech := range invarianceMechs {
		t.Run(mech, func(t *testing.T) {
			runDifferential(t, func(t *testing.T, disable bool) (runOutcome, *kernel.Task) {
				k := kernel.New(kernel.Config{DisableDecodeCache: disable})
				var ground strings.Builder
				k.OnDispatch = groundHook(&ground)
				prog, err := guest.Microbench(kernel.NonexistentSyscall, 300)
				if err != nil {
					t.Fatal(err)
				}
				task, err := prog.Spawn(k)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := attachForTrace(mech, k, task, true)
				if err != nil {
					t.Fatal(err)
				}
				if err := k.Run(-1); err != nil {
					t.Fatal(err)
				}
				if task.ExitCode != 0 {
					t.Fatalf("microbench exited %d", task.ExitCode)
				}
				return finishOutcome(k, task, &ground, rec), task
			})
		})
	}
}

func TestCacheInvarianceJIT(t *testing.T) {
	for _, mech := range invarianceMechs {
		t.Run(mech, func(t *testing.T) {
			runDifferential(t, func(t *testing.T, disable bool) (runOutcome, *kernel.Task) {
				k := kernel.New(kernel.Config{DisableDecodeCache: disable})
				if err := k.FS.MkdirAll("/src", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := k.FS.WriteFile(guest.JITSourcePath, []byte(guest.JITSource), 0o644); err != nil {
					t.Fatal(err)
				}
				var ground strings.Builder
				k.OnDispatch = groundHook(&ground)
				prog, err := guest.JIT()
				if err != nil {
					t.Fatal(err)
				}
				task, err := prog.Spawn(k)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := attachForTrace(mech, k, task, false)
				if err != nil {
					t.Fatal(err)
				}
				if err := k.Run(50_000_000); err != nil {
					t.Fatal(err)
				}
				if task.ExitCode != task.Tgid {
					t.Fatalf("jit guest exited %d, want pid", task.ExitCode)
				}
				return finishOutcome(k, task, &ground, rec), task
			})
		})
	}
}

// coreutilDifferential runs one (utility, libc, mechanism) cell.
func coreutilDifferential(t *testing.T, name string, libc guest.Libc, mech string) {
	runDifferential(t, func(t *testing.T, disable bool) (runOutcome, *kernel.Task) {
		k := kernel.New(kernel.Config{DisableDecodeCache: disable})
		for _, dir := range []string{"/tmp", "/etc", "/var/log"} {
			if err := k.FS.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		// Create the fixture files in sorted order: the map's iteration
		// order must not be a difference between the two compared runs.
		paths := make([]string, 0, len(guest.CoreutilFSFiles))
		for path := range guest.CoreutilFSFiles {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			if err := k.FS.WriteFile(path, []byte(guest.CoreutilFSFiles[path]), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		var ground strings.Builder
		k.OnDispatch = groundHook(&ground)
		prog, err := guest.Coreutil(name, libc)
		if err != nil {
			t.Fatal(err)
		}
		task, err := prog.Spawn(k)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := attachForTrace(mech, k, task, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		if task.ExitCode != 0 {
			t.Fatalf("%s exited %d", name, task.ExitCode)
		}
		return finishOutcome(k, task, &ground, rec), task
	})
}

func TestCacheInvarianceCoreutils(t *testing.T) {
	libcs := []struct {
		name string
		libc guest.Libc
	}{
		{"ubuntu", guest.LibcUbuntu2004(false)},
		{"clearlinux", guest.LibcClearLinux()},
	}
	for _, name := range guest.CoreutilNames {
		for _, lc := range libcs {
			for _, mech := range invarianceMechs {
				mech := mech
				t.Run(name+"/"+lc.name+"/"+mech, func(t *testing.T) {
					coreutilDifferential(t, name, lc.libc, mech)
				})
			}
		}
	}
}

func TestCacheInvarianceWebServers(t *testing.T) {
	for _, style := range []guest.ServerStyle{guest.StyleNginx, guest.StyleLighttpd} {
		for _, mech := range invarianceMechs {
			style, mech := style, mech
			t.Run(style.String()+"/"+mech, func(t *testing.T) {
				run := func(disable bool) webbench.Result {
					res, err := webbench.Run(webbench.Config{
						Style:              style,
						Workers:            1,
						FileSize:           1024,
						Connections:        4,
						Requests:           40,
						Attach:             AttachFunc(mech),
						DisableDecodeCache: disable,
					})
					if err != nil {
						t.Fatalf("webbench %s/%s: %v", style, mech, err)
					}
					return res
				}
				on := run(false)
				off := run(true)
				if on != off {
					t.Errorf("web server results differ cache on/off:\non:  %+v\noff: %+v", on, off)
				}
			})
		}
	}
}

// TestCacheInvarianceSMC is the dedicated self-modifying-code check:
// lazypoline's lazy slow path mprotects a syscall site writable, rewrites
// it to a call into the stub, and flips it back executable while that very
// page is the one being run — and the JIT guest stores freshly generated
// instructions and immediately jumps to them. Both must be invisible to
// the decode cache.
func TestCacheInvarianceSMC(t *testing.T) {
	t.Run("lazypoline-lazy-rewrite", func(t *testing.T) {
		// PreRewrite=false forces every site through the SIGSYS slow path
		// (Protect RW -> WriteAt -> Protect RX) during execution.
		runDifferential(t, func(t *testing.T, disable bool) (runOutcome, *kernel.Task) {
			k := kernel.New(kernel.Config{DisableDecodeCache: disable})
			var ground strings.Builder
			k.OnDispatch = groundHook(&ground)
			prog, err := guest.Microbench(kernel.NonexistentSyscall, 300)
			if err != nil {
				t.Fatal(err)
			}
			task, err := prog.Spawn(k)
			if err != nil {
				t.Fatal(err)
			}
			rec := &trace.Recorder{}
			if err := attachTracing(MechLazypoline, k, task, rec); err != nil {
				t.Fatal(err)
			}
			if err := k.Run(-1); err != nil {
				t.Fatal(err)
			}
			if task.ExitCode != 0 {
				t.Fatalf("microbench exited %d", task.ExitCode)
			}
			return finishOutcome(k, task, &ground, rec), task
		})
	})
	t.Run("jit-direct-store", func(t *testing.T) {
		// The JIT guest writes a getpid routine into RWX memory and calls
		// it: a direct guest store to code with no mprotect in between.
		runDifferential(t, func(t *testing.T, disable bool) (runOutcome, *kernel.Task) {
			k := kernel.New(kernel.Config{DisableDecodeCache: disable})
			if err := k.FS.MkdirAll("/src", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := k.FS.WriteFile(guest.JITSourcePath, []byte(guest.JITSource), 0o644); err != nil {
				t.Fatal(err)
			}
			var ground strings.Builder
			k.OnDispatch = groundHook(&ground)
			prog, err := guest.JIT()
			if err != nil {
				t.Fatal(err)
			}
			task, err := prog.Spawn(k)
			if err != nil {
				t.Fatal(err)
			}
			if err := attach(MechBaseline, k, task, false); err != nil {
				t.Fatal(err)
			}
			if err := k.Run(50_000_000); err != nil {
				t.Fatal(err)
			}
			if task.ExitCode != task.Tgid {
				t.Fatalf("jit guest exited %d, want pid", task.ExitCode)
			}
			return finishOutcome(k, task, &ground, nil), task
		})
	})
}
