package bpf

import "testing"

// BenchmarkSeccompFilter measures one allow-list filter evaluation (what
// the kernel charges per syscall under seccomp).
func BenchmarkSeccompFilter(b *testing.B) {
	p, err := AllowList([]int32{0, 1, 2, 3, 60, 231}, RetTrap)
	if err != nil {
		b.Fatal(err)
	}
	data := (&SeccompData{Nr: 231, Arch: AuditArch}).Marshal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Run(data); err != nil {
			b.Fatal(err)
		}
	}
}
