// Command parbench measures the parallel scheduler's wall-clock scaling
// (DESIGN.md §15): the webbench workload swept over -cores × workers ×
// mechanism. Every cell is first checked for the §15 contract — the
// simulated Result at -cores N must be byte-identical to -cores 1 —
// and then timed; the snapshot records host throughput (requests per
// wall second, best of -repeat) and each cell's speedup over its own
// 1-core run.
//
// Usage:
//
//	parbench [-requests N] [-conns N] [-size B] [-workers 4,8] [-mechs baseline,lazypoline] [-cores 1,2,4,8] [-repeat N] [-out BENCH_parallel.json]
//	parbench -minscale 2.5   # fail unless every cell scales >= 2.5x at the largest core count (skipped on small hosts)
//
// Unlike the other BENCH_*.json files, this snapshot's payload is
// wall-clock data and so varies run to run; what is ratcheted is the
// -minscale floor the run was gated on, recorded in the config block.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lazypoline/internal/benchfmt"
	"lazypoline/internal/experiments"
	"lazypoline/internal/guest"
	"lazypoline/internal/webbench"
)

// minScaleHostCores is the smallest host on which -minscale is
// enforced: below this the largest swept core count oversubscribes the
// machine (the coordinator and client run alongside the shards) and
// wall-clock scaling is not the scheduler's to deliver.
const minScaleHostCores = 8

type cellResult struct {
	Server    string  `json:"server"`
	Workers   int     `json:"workers"`
	Mechanism string  `json:"mechanism"`
	Cores     int     `json:"cores"`
	Requests  int     `json:"requests"`
	WallMs    float64 `json:"wall_ms"`
	WallRPS   float64 `json:"wall_rps"`
	// Scaling is this cell's wall-clock speedup over the same
	// (server, workers, mechanism) cell at -cores 1.
	Scaling float64 `json:"scaling_vs_1core"`
	// ParallelRounds is the shard-engagement diagnostic: zero at
	// -cores 1 by construction, and must be non-zero above it for
	// Scaling to mean anything.
	ParallelRounds uint64 `json:"parallel_rounds"`
}

type parConfig struct {
	Requests    int      `json:"requests"`
	Connections int      `json:"connections"`
	FileSize    int      `json:"file_size"`
	Workers     []int    `json:"workers"`
	Mechanisms  []string `json:"mechanisms"`
	CoreCounts  []int    `json:"core_counts"`
	Repeat      int      `json:"repeat"`
	// MinScale is the scaling floor this snapshot was gated on (0 =
	// ungated). Ratchet: CI passes the floor explicitly and raises it
	// as the scheduler improves, never lowers it.
	MinScale float64 `json:"min_scale"`
	// MinScaleEnforced records whether the host was large enough for
	// the gate to actually apply.
	MinScaleEnforced bool `json:"min_scale_enforced"`
}

func main() {
	requests := flag.Int("requests", 1200, "requests per measured run")
	conns := flag.Int("conns", 24, "keep-alive client connections")
	size := flag.Int("size", 16384, "static file size in bytes")
	workers := flag.String("workers", "4,8", "worker process counts")
	mechs := flag.String("mechs", "baseline,lazypoline", "mechanisms to measure")
	cores := flag.String("cores", "1,2,4,8", "scheduler core counts to sweep (1 is required: it is the identity baseline)")
	repeat := flag.Int("repeat", 3, "timed repetitions per cell (best is kept)")
	minScale := flag.Float64("minscale", 0, "fail unless every cell's scaling at the largest core count meets this floor (0 disables; skipped when the host has fewer than 8 cores)")
	out := flag.String("out", "BENCH_parallel.json", "machine-readable result file (empty disables)")
	flag.Parse()

	cfg := parConfig{
		Requests:    *requests,
		Connections: *conns,
		FileSize:    *size,
		Repeat:      *repeat,
		MinScale:    *minScale,
		Mechanisms:  splitList(*mechs),
	}
	var err error
	if cfg.Workers, err = parseInts(*workers); err != nil {
		fatal(err)
	}
	if cfg.CoreCounts, err = parseInts(*cores); err != nil {
		fatal(err)
	}
	if len(cfg.CoreCounts) == 0 || cfg.CoreCounts[0] != 1 {
		fatal(fmt.Errorf("-cores must start with 1 (the identity baseline), got %q", *cores))
	}
	cfg.MinScaleEnforced = *minScale > 0 && runtime.NumCPU() >= minScaleHostCores

	fmt.Printf("Parallel scheduler scaling — %d requests, %d connections, %dB files, host has %d cores\n",
		cfg.Requests, cfg.Connections, cfg.FileSize, runtime.NumCPU())

	begin := time.Now()
	var rows []cellResult
	gateFailures := 0
	maxCores := cfg.CoreCounts[len(cfg.CoreCounts)-1]
	for _, w := range cfg.Workers {
		for _, mech := range cfg.Mechanisms {
			base := webbench.Config{
				Style:       guest.StyleNginx,
				Workers:     w,
				FileSize:    cfg.FileSize,
				Connections: cfg.Connections,
				Requests:    cfg.Requests,
				Attach:      experiments.AttachFunc(mech),
			}
			fmt.Printf("\nnginx, %d workers, %s\n", w, mech)
			var refRes webbench.Result
			var base1 float64
			for _, c := range cfg.CoreCounts {
				res, st, wall, err := measure(base, c, cfg.Repeat)
				if err != nil {
					fatal(fmt.Errorf("cores=%d workers=%d %s: %w", c, w, mech, err))
				}
				if c == 1 {
					refRes, base1 = res, wall
				} else if !reflect.DeepEqual(res, refRes) {
					fatal(fmt.Errorf("DETERMINISM VIOLATION: workers=%d %s cores=%d Result differs from cores=1:\n got %+v\nwant %+v",
						w, mech, c, res, refRes))
				}
				row := cellResult{
					Server:         "nginx",
					Workers:        w,
					Mechanism:      mech,
					Cores:          c,
					Requests:       res.Requests,
					WallMs:         wall * 1e3,
					WallRPS:        float64(res.Requests) / wall,
					Scaling:        base1 / wall,
					ParallelRounds: st.ParallelRounds,
				}
				rows = append(rows, row)
				fmt.Printf("  cores=%d  %8.1fms  %10.0f req/s  %5.2fx  (%d parallel rounds)\n",
					c, row.WallMs, row.WallRPS, row.Scaling, row.ParallelRounds)
				if c > 1 && row.ParallelRounds == 0 {
					fatal(fmt.Errorf("cores=%d workers=%d %s never engaged the parallel scheduler", c, w, mech))
				}
				if cfg.MinScaleEnforced && c == maxCores && row.Scaling < cfg.MinScale {
					fmt.Printf("  ^ below the -minscale %.2f floor\n", cfg.MinScale)
					gateFailures++
				}
			}
		}
	}
	wall := time.Since(begin)
	fmt.Printf("\n%d cells in %.1fs\n", len(rows), wall.Seconds())
	if *minScale > 0 && !cfg.MinScaleEnforced {
		fmt.Printf("-minscale %.2f not enforced: host has %d cores (< %d)\n", *minScale, runtime.NumCPU(), minScaleHostCores)
	}

	if *out != "" {
		err := benchfmt.Write(*out, benchfmt.File{
			Name:        "parallel",
			Cores:       maxCores,
			WallSeconds: wall.Seconds(),
			Config:      cfg,
			Results:     rows,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if gateFailures > 0 {
		fatal(fmt.Errorf("%d cell(s) below the -minscale %.2f floor at cores=%d", gateFailures, cfg.MinScale, maxCores))
	}
}

// measure times cfg at the given core count repeat times and returns
// the (identical) simulated Result plus the best wall time in seconds.
// One untimed warmup run absorbs host JIT/page-cache noise.
func measure(cfg webbench.Config, cores, repeat int) (webbench.Result, webbench.RunStats, float64, error) {
	cfg.Cores = cores
	var st webbench.RunStats
	cfg.Stats = &st
	if _, err := webbench.Run(cfg); err != nil {
		return webbench.Result{}, st, 0, err
	}
	var res webbench.Result
	best := 0.0
	for i := 0; i < repeat; i++ {
		begin := time.Now()
		r, err := webbench.Run(cfg)
		wall := time.Since(begin).Seconds()
		if err != nil {
			return res, st, 0, err
		}
		if i == 0 || wall < best {
			best = wall
		}
		res = r
	}
	return res, st, best, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parbench:", err)
	os.Exit(1)
}
