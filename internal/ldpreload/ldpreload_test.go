package ldpreload

import (
	"testing"

	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
)

func setupFS(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	for _, dir := range []string{"/tmp", "/etc", "/var/log"} {
		if err := k.FS.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for path, contents := range guest.CoreutilFSFiles {
		if err := k.FS.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHooksWrapperCalls(t *testing.T) {
	k := kernel.New(kernel.Config{})
	setupFS(t, k)
	prog, err := guest.Coreutil("cat", guest.LibcUbuntu2004(false))
	if err != nil {
		t.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	m, err := Attach(k, task, rec, prog.Image.Symbols, DefaultWrappers)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hooked) == 0 {
		t.Fatal("nothing hooked")
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 0 {
		t.Fatalf("cat exited %d", task.ExitCode)
	}
	// cat's open/read/write/close all flow through libc wrappers.
	for _, nr := range []int64{kernel.SysOpen, kernel.SysRead, kernel.SysWrite, kernel.SysClose} {
		if !rec.Contains(nr) {
			t.Errorf("wrapper call %s not interposed", kernel.SyscallName(nr))
		}
	}
	// cat still behaves identically.
	want := guest.CoreutilFSFiles["/tmp/file.txt"]
	if string(task.ConsoleOut) != want {
		t.Errorf("output corrupted by hooks: %q", task.ConsoleOut)
	}
}

// TestMissesRawSyscalls is the paper's Related-Work point: syscall
// instructions outside wrapper functions are invisible to function-level
// interposition — the exhaustiveness gap that instruction-level
// mechanisms (and lazypoline in particular) close.
func TestMissesRawSyscalls(t *testing.T) {
	k := kernel.New(kernel.Config{})
	prog, err := guest.Build("raw", guest.Header+`
	_start:
		call libc_init
		; a RAW getpid, not via any wrapper (what exploit payloads,
		; static binaries and inlined syscalls look like)
		mov64 rax, SYS_getpid
		syscall
		mov rdi, rax
		call libc_exit
	`+guest.LibcUbuntu2004(false).Source())
	if err != nil {
		t.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	if _, err := Attach(k, task, rec, prog.Image.Symbols, DefaultWrappers); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != task.Tgid {
		t.Fatalf("exit = %d, want pid", task.ExitCode)
	}
	if rec.Contains(kernel.SysGetpid) {
		t.Error("raw getpid was interposed — function-level hooks should miss it")
	}
	// The wrapped exit IS seen: the mechanism works, it just is not
	// exhaustive.
	if !rec.Contains(kernel.SysExit) {
		t.Error("wrapped exit not interposed")
	}
}

// TestUnknownWrappersAreSilentGaps: a wrapper missing from the mapping
// is simply not hooked ("must identify all syscall wrapper functions...
// does not scale").
func TestUnknownWrappersAreSilentGaps(t *testing.T) {
	k := kernel.New(kernel.Config{})
	setupFS(t, k)
	prog, err := guest.Coreutil("cat", guest.LibcUbuntu2004(false))
	if err != nil {
		t.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	// Only read is in our map; open/write/close are "unknown wrappers".
	m, err := Attach(k, task, rec, prog.Image.Symbols, []WrapperInfo{
		{"libc_read", kernel.SysRead},
		{"libc_mystery", 999}, // not in the symbol table at all
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Missing) != 1 || m.Missing[0] != "libc_mystery" {
		t.Errorf("missing = %v", m.Missing)
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 0 {
		t.Fatalf("cat exited %d", task.ExitCode)
	}
	if !rec.Contains(kernel.SysRead) {
		t.Error("hooked read not seen")
	}
	if rec.Contains(kernel.SysOpen) || rec.Contains(kernel.SysClose) {
		t.Error("unhooked wrappers were somehow interposed")
	}
}

// TestMicrobenchOverheadMinimal: the paper concedes function-level
// interposition is fast ("performance impact ... minimal") — cheaper
// even than zpoline, since there is no trampoline round trip per
// syscall, only a stub on the wrapper path.
func TestMicrobenchOverheadMinimal(t *testing.T) {
	run := func(hook bool) uint64 {
		k := kernel.New(kernel.Config{})
		prog, err := guest.Build("loop", guest.Header+`
		_start:
			call libc_init
			mov64 rcx, 200
		loop:
			push rcx
			mov64 rdi, 1
			lea rsi, msg
			mov64 rdx, 1
			call libc_write
			pop rcx
			addi rcx, -1
			jnz loop
			mov64 rdi, 0
			call libc_exit
		msg:
			.ascii "x"
		`+guest.LibcUbuntu2004(false).Source())
		if err != nil {
			t.Fatal(err)
		}
		task, err := prog.Spawn(k)
		if err != nil {
			t.Fatal(err)
		}
		if hook {
			if _, err := Attach(k, task, &trace.Recorder{}, prog.Image.Symbols, DefaultWrappers); err != nil {
				t.Fatal(err)
			}
		}
		if err := k.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		return task.CPU.Cycles
	}
	base, hooked := run(false), run(true)
	overhead := float64(hooked) / float64(base)
	t.Logf("function-level interposition overhead: %.3fx", overhead)
	if overhead > 1.15 {
		t.Errorf("overhead %.3fx, expected minimal (<1.15x)", overhead)
	}
}
