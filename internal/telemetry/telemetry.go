// Package telemetry is the simulator's observability layer: a metrics
// registry of counters/gauges/virtual-cycle histograms, a timeline event
// trace exportable as Chrome trace-event JSON (loadable in Perfetto),
// and a deterministic sampling profiler keyed on virtual cycles.
//
// The layer is strictly observational. Nothing in this package charges
// guest cycles, touches guest memory, or perturbs scheduling; a kernel
// built with a Sink must produce byte-identical guest-visible behaviour
// to one built without (the inertness contract, enforced by the
// TestTelemetryInvariance* suite in internal/experiments). To keep the
// dependency graph acyclic the package imports only the standard
// library, so cpu/mem/netstack/kernel and every mechanism can publish
// into it.
//
// All hot-path handles (Counter, Gauge, Histogram) update with
// sync/atomic operations, so substrate code may publish from the
// parallel sweep harness without extra locking.
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Sink bundles the three telemetry surfaces. Any field may be nil to
// disable that surface; a nil *Sink disables the layer entirely (the
// kernel guards every touch with a single nil check).
type Sink struct {
	Metrics  *Registry
	Timeline *Timeline
	Profiler *Profiler
}

// NewSink returns a Sink with all three surfaces enabled.
func NewSink() *Sink {
	return &Sink{
		Metrics:  NewRegistry(),
		Timeline: NewTimeline(),
		Profiler: NewProfiler(),
	}
}

// Registry is a get-or-create namespace of metrics. Handle creation
// takes a mutex; updates through a handle are lock-free atomics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func(*Registry)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter. Collectors use it to publish values that
// are accumulated elsewhere (mechanism stats structs, cpu fields).
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n is larger (high-water tracking).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count for power-of-two histograms: bucket 0
// holds the value 0 and bucket i (i ≥ 1) holds values v with
// bits.Len64(v) == i, i.e. the range [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram accumulates a distribution of virtual-cycle measurements in
// power-of-two buckets. All fields update atomically; the exemplar
// table has its own mutex and is only touched by ObserveEx.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stores ^value so zero-init means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64

	exMu      sync.Mutex
	exemplars [histBuckets]histExemplar
}

// histExemplar pairs a bucket's largest observed value with the trace
// ID that produced it.
type histExemplar struct {
	val   uint64
	trace uint64
	set   bool
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for { // min, stored inverted so the zero value acts as +inf
		cur := h.min.Load()
		if ^v <= cur || h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveEx records one value and attaches a trace-ID exemplar to its
// bucket: each bucket keeps the trace of its largest observation
// (running maximum, later ties win), so any percentile read off the
// histogram is one lookup away from a concrete span tree. Returns
// whether this observation became (or replaced) its bucket's exemplar.
// A zero trace records the value without competing for the exemplar.
func (h *Histogram) ObserveEx(v, trace uint64) bool {
	h.Observe(v)
	if trace == 0 {
		return false
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	e := &h.exemplars[bits.Len64(v)]
	if !e.set || v >= e.val {
		e.val, e.trace, e.set = v, trace, true
		return true
	}
	return false
}

// Exemplar returns bucket i's exemplar, if one was attached.
func (h *Histogram) Exemplar(i int) (val, trace uint64, ok bool) {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	e := h.exemplars[i]
	return e.val, e.trace, e.set
}

// BucketExemplar is one bucket's exemplar in export form: the bucket's
// range and population, plus the retained observation and its trace ID
// in the same zero-padded hex the trace files use.
type BucketExemplar struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
	Value uint64 `json:"value"`
	Trace string `json:"trace"`
}

// Exemplars returns every bucket that has an exemplar, in bucket order.
func (h *Histogram) Exemplars() []BucketExemplar {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	var out []BucketExemplar
	for i := range h.exemplars {
		e := h.exemplars[i]
		if !e.set {
			continue
		}
		lo, hi := BucketRange(i)
		out = append(out, BucketExemplar{
			Lo: lo, Hi: hi, Count: h.buckets[i].Load(),
			Value: e.val, Trace: fmt.Sprintf("%016x", e.trace),
		})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// BucketRange returns the [lo, hi] value range of bucket i.
func BucketRange(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<i - 1
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCollector registers a function run (in registration order) at
// every Snapshot. Substrates whose counters live in their own structs —
// mechanism Stats, cpu fields, netstack stats — publish through
// collectors instead of updating registry handles inline.
func (r *Registry) AddCollector(fn func(*Registry)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// HistBucket is one non-empty histogram bucket in a snapshot. Exemplar
// fields are present only when ObserveEx attached one.
type HistBucket struct {
	Lo            uint64 `json:"lo"`
	Hi            uint64 `json:"hi"`
	Count         uint64 `json:"count"`
	Exemplar      string `json:"exemplar,omitempty"`
	ExemplarValue uint64 `json:"exemplar_value,omitempty"`
}

// HistSnapshot is the exported state of one histogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Min     uint64       `json:"min"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time, JSON-serialisable view of a registry.
// encoding/json emits map keys sorted, so marshalling a snapshot is
// deterministic.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot runs all collectors, then captures every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	collectors := append([]func(*Registry){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range collectors {
		fn(r)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
		if hs.Count > 0 {
			hs.Min = ^h.min.Load()
		}
		h.exMu.Lock()
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				lo, hi := BucketRange(i)
				b := HistBucket{Lo: lo, Hi: hi, Count: n}
				if e := h.exemplars[i]; e.set {
					b.Exemplar = fmt.Sprintf("%016x", e.trace)
					b.ExemplarValue = e.val
				}
				hs.Buckets = append(hs.Buckets, b)
			}
		}
		h.exMu.Unlock()
		s.Histograms[name] = hs
	}
	return s
}

// MarshalJSON gives Snapshot a stable, indented form suitable for both
// -metrics-out files and test goldens.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	type alias Snapshot // avoid recursing into this method
	b, err := json.MarshalIndent(alias(s), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CounterNames returns the sorted names of all counters in the
// snapshot, for deterministic iteration.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
