package ptracer

import (
	"testing"

	"lazypoline/internal/asm"
	"lazypoline/internal/interpose"
	"lazypoline/internal/kernel"
	"lazypoline/internal/loader"
	"lazypoline/internal/trace"
)

func spawn(t *testing.T, k *kernel.Kernel, src string) *kernel.Task {
	t.Helper()
	p, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.FromProgram(p, "_start")
	if err != nil {
		t.Fatal(err)
	}
	task, err := k.SpawnImage(img, kernel.SpawnOpts{Name: "tracee"})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

const guest = `
_start:
	mov64 rax, 39
	syscall
	mov rdi, rax
	mov64 rax, 60
	syscall
`

func TestTraceAndModify(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, guest)
	rec := &trace.Recorder{}
	m := Attach(k, task, rec)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m.Stops != 2 {
		t.Errorf("enter stops = %d, want 2", m.Stops)
	}
	want := []int64{kernel.SysGetpid, kernel.SysExit}
	if d := trace.DiffNrs(rec.Nrs(), want); d != "" {
		t.Errorf("trace: %s (%v)", d, rec.Nrs())
	}
	if task.ExitCode != task.Tgid {
		t.Errorf("exit = %d", task.ExitCode)
	}
}

func TestEmulation(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, guest)
	gt := &trace.GroundTruth{}
	k.OnDispatch = gt.Hook()
	ip := interpose.FuncInterposer{
		OnEnter: func(c *interpose.Call) interpose.Action {
			if c.Nr == kernel.SysGetpid {
				c.Ret = 555
				return interpose.Emulate
			}
			return interpose.Continue
		},
	}
	Attach(k, task, ip)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 555 {
		t.Errorf("exit = %d, want 555", task.ExitCode)
	}
	for _, nr := range gt.Nrs() {
		if nr == kernel.SysGetpid {
			t.Error("emulated getpid dispatched")
		}
	}
}

func TestReturnValueRewriting(t *testing.T) {
	k := kernel.New(kernel.Config{})
	task := spawn(t, k, guest)
	ip := interpose.FuncInterposer{
		OnExit: func(c *interpose.Call) {
			if c.Nr == kernel.SysGetpid {
				c.Ret = 9876
			}
		},
	}
	Attach(k, task, ip)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 9876 {
		t.Errorf("exit = %d, want rewritten 9876", task.ExitCode)
	}
}

func TestPtraceSlowestMechanism(t *testing.T) {
	// ptrace should be far slower than even SUD per syscall (Table I
	// "Low").
	cycles := func(attach bool) uint64 {
		k := kernel.New(kernel.Config{})
		task := spawn(t, k, `
		_start:
			mov64 rcx, 20
		loop:
			push rcx
			mov64 rax, 500
			syscall
			pop rcx
			addi rcx, -1
			jnz loop
			mov64 rdi, 0
			mov64 rax, 60
			syscall
		`)
		if attach {
			Attach(k, task, interpose.Dummy{})
		}
		if err := k.Run(50_000_000); err != nil {
			t.Fatal(err)
		}
		return task.CPU.Cycles
	}
	native, traced := cycles(false), cycles(true)
	if traced < 20*native {
		t.Errorf("ptrace %.1fx native, expected >20x", float64(traced)/float64(native))
	}
}
