package otrace

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lazypoline/internal/telemetry"
)

func TestIDDeterministicAndWellFormed(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 10_000; i++ {
		id := ID(42, i)
		if id != ID(42, i) {
			t.Fatalf("ID(42,%d) not deterministic", i)
		}
		if id == 0 {
			t.Fatalf("ID(42,%d) = 0 (reserved for 'no trace')", i)
		}
		if id == ProbeTrace {
			t.Fatalf("ID(42,%d) collides with ProbeTrace", i)
		}
		if id&maxAttempt != 0 {
			t.Fatalf("ID(42,%d) = %#x has attempt bits set", i, id)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("ID collision: indices %d and %d both map to %#x", prev, i, id)
		}
		seen[id] = i
	}
	if ID(1, 0) == ID(2, 0) {
		t.Error("different seeds produced identical first IDs")
	}
}

func TestCtxPacking(t *testing.T) {
	id := ID(7, 3)
	for _, attempt := range []int{1, 2, maxAttempt} {
		ctx := Ctx(id, attempt)
		if CtxTrace(ctx) != id || CtxAttempt(ctx) != attempt {
			t.Errorf("Ctx(%#x, %d) round-trip: trace %#x attempt %d",
				id, attempt, CtxTrace(ctx), CtxAttempt(ctx))
		}
	}
	if CtxAttempt(Ctx(id, 0)) != 1 {
		t.Error("attempt 0 should clamp to 1")
	}
	if CtxAttempt(Ctx(id, maxAttempt+5)) != maxAttempt {
		t.Error("oversized attempt should saturate")
	}
}

// TestTailSampling exercises every retention reason plus the sampled-out
// path, and checks that the root span is prepended on retention.
func TestTailSampling(t *testing.T) {
	tr := New(Config{LatencyThreshold: 1000})
	tr.SetDrillWindow(5000, 6000)

	cases := []struct {
		name   string
		o      Outcome
		arrive uint64
		want   string // retention reason, "" = sampled out
	}{
		{"fast", Outcome{End: 100, Latency: 10, Attempts: 1}, 90, ""},
		{"lost", Outcome{End: 200, Lost: true, Attempts: 4}, 100, "lost"},
		{"retried", Outcome{End: 300, Latency: 10, Attempts: 2}, 290, "retried"},
		{"slow", Outcome{End: 2000, Latency: 1500, Attempts: 1}, 500, "slow"},
		{"drill", Outcome{End: 5500, Latency: 10, Attempts: 1}, 5490, "drill-window"},
		{"exemplar", Outcome{End: 7000, Latency: 10, Attempts: 1, Exemplar: true}, 6990, "exemplar"},
	}
	for i, c := range cases {
		trace := ID(99, i)
		tr.StartRequest(trace, c.arrive)
		tr.Span(Span{Trace: trace, Kind: KindAttempt, Name: "attempt", Start: c.arrive})
		tr.EndRequest(trace, c.o)
		tree := tr.Tree(trace)
		if c.want == "" {
			if tree != nil {
				t.Errorf("%s: retained (reason %q), want sampled out", c.name, tree.Reason)
			}
			continue
		}
		if tree == nil {
			t.Errorf("%s: sampled out, want retained as %q", c.name, c.want)
			continue
		}
		if tree.Reason != c.want {
			t.Errorf("%s: reason %q, want %q", c.name, tree.Reason, c.want)
		}
		if len(tree.Spans) != 2 || tree.Spans[0].Kind != KindRequest {
			t.Errorf("%s: root span not prepended: %+v", c.name, tree.Spans)
		}
	}
	st := tr.Stats()
	if st.Started != len(cases) || st.Retained != 5 || st.SampledOut != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestTreeAndSpanBudgets(t *testing.T) {
	tr := New(Config{LatencyThreshold: 1, MaxTrees: 2, MaxSpansPerTree: 3})
	for i := 0; i < 4; i++ {
		trace := ID(5, i)
		tr.StartRequest(trace, 0)
		for j := 0; j < 5; j++ {
			tr.Span(Span{Trace: trace, Kind: KindSys, Name: "read", Start: uint64(j)})
		}
		tr.EndRequest(trace, Outcome{End: 100, Latency: 100, Attempts: 1})
	}
	st := tr.Stats()
	if st.Retained != 2 || st.DroppedTrees != 2 {
		t.Errorf("tree budget: retained %d dropped %d, want 2/2", st.Retained, st.DroppedTrees)
	}
	if st.TruncatedSpans != 4*2 { // 2 of 5 spans over budget per tree
		t.Errorf("span budget: truncated %d, want 8", st.TruncatedSpans)
	}
	for _, tree := range tr.Trees() {
		if !tree.Truncated {
			t.Error("over-budget tree not marked truncated")
		}
		if len(tree.Spans) != 4 { // root + 3 buffered
			t.Errorf("tree has %d spans, want 4", len(tree.Spans))
		}
	}
	// Orphans: spans for traces that never opened (or already closed).
	tr.Span(Span{Trace: ID(5, 0), Kind: KindSys, Name: "late", Start: 999})
	if tr.Stats().OrphanSpans != 1 {
		t.Errorf("orphan spans = %d, want 1", tr.Stats().OrphanSpans)
	}
}

// TestFlightRecorder: the ring keeps the most recent FlightSize kernel
// spans in order, and DumpFlight snapshots oldest-first with the reason.
func TestFlightRecorder(t *testing.T) {
	tr := New(Config{FlightSize: 4})
	for i := 0; i < 7; i++ {
		tr.KernelSpan(Span{Kind: KindSys, Name: fmt.Sprintf("sys%d", i), Start: uint64(i)})
	}
	tr.DumpFlight("test", 100)
	tr.mu.Lock()
	events := append([]Span(nil), tr.events...)
	tr.mu.Unlock()
	if len(events) != 5 { // header + 4 ring entries
		t.Fatalf("dump produced %d events, want 5", len(events))
	}
	if events[0].Kind != KindFlight || events[0].Note != "test" {
		t.Fatalf("dump header: %+v", events[0])
	}
	for i, want := range []string{"sys3", "sys4", "sys5", "sys6"} {
		got := events[i+1]
		if got.Name != want || got.Kind != KindFlight || got.Note != "test" {
			t.Errorf("ring[%d] = %q (%s/%s), want %q oldest-first", i, got.Name, got.Kind, got.Note, want)
		}
	}
	if tr.Stats().FlightDumps != 1 {
		t.Errorf("FlightDumps = %d", tr.Stats().FlightDumps)
	}
}

// TestExportRoundTrip: every span kind must survive Export →
// EncodeJSONL → DecodeTrace and Export → EncodeChrome → DecodeTrace
// unchanged — the property the CI tracecat gate leans on.
func TestExportRoundTrip(t *testing.T) {
	tr := New(Config{LatencyThreshold: 1})
	trace := ID(3, 0)
	tr.StartRequest(trace, 10)
	tr.Span(Span{Trace: trace, Ctx: Ctx(trace, 1), Kind: KindAttempt, Name: "attempt", Start: 11})
	tr.Span(Span{Trace: trace, Ctx: Ctx(trace, 1), Kind: KindLB, Name: "route", Start: 12, Note: "backend 1"})
	tr.KernelSpan(Span{Ctx: Ctx(trace, 1), Kind: KindSys, Name: "read", Start: 13, Dur: 40, Lane: 7, Path: "trampoline", Ret: 16})
	tr.Span(Span{Kind: KindDrill, Name: "kill-fire", Start: 14, Note: "backend 2"})
	tr.DumpFlight("roundtrip", 15)
	tr.EndRequest(trace, Outcome{End: 60, Latency: 50, Attempts: 1})

	evs := tr.Export()
	for _, enc := range []struct {
		name   string
		encode func(*bytes.Buffer) error
	}{
		{"jsonl", func(b *bytes.Buffer) error { return telemetry.EncodeJSONL(b, evs) }},
		{"chrome", func(b *bytes.Buffer) error { return telemetry.EncodeChrome(b, evs) }},
	} {
		var buf bytes.Buffer
		if err := enc.encode(&buf); err != nil {
			t.Fatalf("%s encode: %v", enc.name, err)
		}
		got, err := telemetry.DecodeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("%s decode: %v", enc.name, err)
		}
		if !reflect.DeepEqual(evs, got) {
			t.Errorf("%s round-trip changed events:\nwant %+v\ngot  %+v", enc.name, evs, got)
		}
	}
}

// TestTracerRace hammers the tail sampler from many goroutines under
// -race: concurrent request lifecycles, kernel spans, and flight dumps.
// Determinism is the single-goroutine caller's property; this test only
// asserts memory safety and conservation of the tree counters.
func TestTracerRace(t *testing.T) {
	tr := New(Config{LatencyThreshold: 50, MaxTrees: 64, MaxSpansPerTree: 8, FlightSize: 16})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				trace := ID(uint64(w), i)
				tr.StartRequest(trace, uint64(i))
				tr.Span(Span{Trace: trace, Kind: KindAttempt, Name: "attempt", Start: uint64(i)})
				tr.KernelSpan(Span{Ctx: Ctx(trace, 1), Kind: KindSys, Name: "read", Start: uint64(i), Dur: 1, Path: "direct"})
				if i%50 == 0 {
					tr.DumpFlight("race", uint64(i))
				}
				tr.EndRequest(trace, Outcome{End: uint64(i) + uint64(w)*20, Latency: uint64(w) * 20, Attempts: 1})
			}
		}(w)
	}
	wg.Wait()
	st := tr.Stats()
	if st.Started != workers*perWorker {
		t.Errorf("started %d, want %d", st.Started, workers*perWorker)
	}
	if st.Retained+st.SampledOut+int(st.DroppedTrees) != st.Started {
		t.Errorf("tree conservation: %+v", st)
	}
	if len(tr.Trees()) != st.Retained {
		t.Errorf("Trees() length %d != Retained %d", len(tr.Trees()), st.Retained)
	}
	// The export must stay well-formed after concurrent collection.
	if evs := tr.Export(); len(evs) == 0 {
		t.Error("empty export")
	}
}

// TestNilTracerIsInert: every producer hook must be callable through a
// nil receiver — that is the whole inertness contract.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.StartRequest(1<<9, 0)
	tr.Span(Span{Trace: 1 << 9})
	tr.KernelSpan(Span{Ctx: Ctx(1<<9, 1)})
	tr.DumpFlight("nil", 0)
	tr.EndRequest(1<<9, Outcome{})
}
