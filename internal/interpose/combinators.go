package interpose

import "lazypoline/internal/kernel"

// Chain composes interposers: Enter hooks run first-to-last and the
// first Emulate verdict wins (later interposers still observe the call);
// Exit hooks run last-to-first, each seeing the current return value.
// This mirrors how real deployments stack concerns (tracing + policy +
// rewriting) on one mechanism.
type Chain []Interposer

// Enter implements Interposer.
func (c Chain) Enter(call *Call) Action {
	verdict := Continue
	for _, ip := range c {
		if ip.Enter(call) == Emulate {
			verdict = Emulate
		}
	}
	return verdict
}

// Exit implements Interposer.
func (c Chain) Exit(call *Call) {
	for i := len(c) - 1; i >= 0; i-- {
		c[i].Exit(call)
	}
}

var _ Interposer = Chain{}

// Filter is a policy interposer in the spirit of seccomp allow-lists —
// but enforced from user space with full expressiveness, so it composes
// with deep-inspection hooks instead of being limited to numbers.
type Filter struct {
	// Allowed, if non-nil, lists the permitted syscall numbers; anything
	// else is denied.
	Allowed map[int64]bool
	// Denied lists explicitly denied numbers (checked first).
	Denied map[int64]bool
	// Errno is the error for denied calls (default EPERM).
	Errno int64
	// OnDeny, if set, observes denials.
	OnDeny func(c *Call)

	// DeniedCount tallies enforcement actions.
	DeniedCount int
}

// Enter implements Interposer.
func (f *Filter) Enter(c *Call) Action {
	deny := false
	if f.Denied != nil && f.Denied[c.Nr] {
		deny = true
	} else if f.Allowed != nil && !f.Allowed[c.Nr] {
		deny = true
	}
	if !deny {
		return Continue
	}
	f.DeniedCount++
	errno := f.Errno
	if errno == 0 {
		errno = kernel.EPERM
	}
	c.Ret = -errno
	if f.OnDeny != nil {
		f.OnDeny(c)
	}
	return Emulate
}

// Exit implements Interposer.
func (f *Filter) Exit(*Call) {}

var _ Interposer = (*Filter)(nil)
