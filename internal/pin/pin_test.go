package pin

import (
	"testing"

	"lazypoline/internal/asm"
	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/loader"
)

func runAnalyzed(t *testing.T, src string) Report {
	t.Helper()
	p, err := asm.Assemble(guest.Header+src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.FromProgram(p, "_start")
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	task, err := k.SpawnImage(img, kernel.SpawnOpts{Name: "probe"})
	if err != nil {
		t.Fatal(err)
	}
	a := Attach(task)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return a.Report()
}

func TestDetectsListing1Pattern(t *testing.T) {
	// The exact Listing 1 shape: xmm0 populated, two syscalls, then read.
	r := runAnalyzed(t, `
	_start:
		mov64 r12, 0x7fef0000
		movq2x xmm0, r12
		punpck xmm0
		mov64 rax, SYS_set_tid_address
		syscall
		mov64 rax, SYS_set_robust_list
		syscall
		movups_st [r12], xmm0
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	`)
	if !r.Affected() {
		t.Fatal("Listing 1 pattern not detected")
	}
	v := r.Violations[0]
	if v.Reg != "xmm0" {
		t.Errorf("reg = %s, want xmm0", v.Reg)
	}
	if len(v.Syscalls) != 2 || v.Syscalls[0] != kernel.SysSetTidAddress || v.Syscalls[1] != kernel.SysSetRobustList {
		t.Errorf("crossed syscalls = %v", v.Syscalls)
	}
}

func TestNoFalsePositiveWhenRewrittenBeforeRead(t *testing.T) {
	// xmm0 is overwritten after the syscall and before the read: no
	// preservation expectation.
	r := runAnalyzed(t, `
	_start:
		mov64 r12, 0x7fef0000
		movq2x xmm0, r12
		mov64 rax, SYS_getpid
		syscall
		movq2x xmm0, r12      ; fresh write after the syscall
		movups_st [r12], xmm0
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	`)
	if r.Affected() {
		t.Errorf("false positive: %v", r.Violations)
	}
}

func TestNoFalsePositiveWithoutSyscallBetween(t *testing.T) {
	r := runAnalyzed(t, `
	_start:
		mov64 r12, 0x7fef0000
		movq2x xmm0, r12
		movups_st [r12], xmm0   ; read immediately, then syscalls
		mov64 rax, SYS_getpid
		syscall
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	`)
	if r.Affected() {
		t.Errorf("false positive: %v", r.Violations)
	}
}

func TestDetectsX87Pattern(t *testing.T) {
	r := runAnalyzed(t, `
	_start:
		mov64 rbx, 42
		fld rbx
		mov64 rax, SYS_getpid
		syscall
		fst rcx
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	`)
	if !r.Affected() {
		t.Fatal("x87 pattern not detected")
	}
	if r.Violations[0].Reg != "x87" {
		t.Errorf("reg = %s", r.Violations[0].Reg)
	}
}

func TestXorpsZeroIdiomIsPureWrite(t *testing.T) {
	// xorps xmm2, xmm2 after a syscall kills the live value: reading
	// afterwards is fine.
	r := runAnalyzed(t, `
	_start:
		mov64 r12, 0x7fef0000
		movq2x xmm2, r12
		mov64 rax, SYS_getpid
		syscall
		xorps xmm2, xmm2
		movups_st [r12], xmm2
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	`)
	if r.Affected() {
		t.Errorf("zeroing idiom misread as a dependent read: %v", r.Violations)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table III: on Ubuntu 20.04 exactly ls, mkdir, mv, cp are
	// affected; on Clear Linux every utility is.
	wantUbuntu := map[string]bool{
		"ls": true, "pwd": false, "chmod": false, "mkdir": true, "mv": true,
		"cp": true, "rm": false, "touch": false, "cat": false, "clear": false,
	}
	ubuntuAffected := 0
	for _, row := range rows {
		if row.UbuntuAffected != wantUbuntu[row.Util] {
			t.Errorf("Ubuntu %s: affected=%v, want %v", row.Util, row.UbuntuAffected, wantUbuntu[row.Util])
		}
		if row.UbuntuAffected {
			ubuntuAffected++
		}
		if !row.ClearAffected {
			t.Errorf("Clear Linux %s: want affected (ptmalloc_init)", row.Util)
		}
	}
	if ubuntuAffected != 4 {
		t.Errorf("Ubuntu affected count = %d, want 4 (40%%)", ubuntuAffected)
	}
	// The Ubuntu violations cross set_tid_address/set_robust_list (the
	// pthread path); the Clear Linux ones cross getrandom.
	for _, row := range rows {
		if row.UbuntuAffected {
			found := false
			for _, v := range row.UbuntuReport.Violations {
				for _, nr := range v.Syscalls {
					if nr == kernel.SysSetRobustList {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("Ubuntu %s: violation does not cross set_robust_list", row.Util)
			}
		}
		foundRandom := false
		for _, v := range row.ClearReport.Violations {
			for _, nr := range v.Syscalls {
				if nr == kernel.SysGetrandom {
					foundRandom = true
				}
			}
		}
		if !foundRandom {
			t.Errorf("Clear Linux %s: violation does not cross getrandom", row.Util)
		}
	}
}
