// Package ptracer implements the ptrace-based interposition baseline
// (§II-A): a tracer attached to the tracee receives synchronous syscall-
// enter and syscall-exit stops, at the price of two context switches per
// stop plus one ptrace operation per register/memory access — the "Low
// efficiency" row of Table I. Like SUD it is fully exhaustive (the kernel
// stops every syscall, wherever its instruction came from) and fully
// expressive (the tracer reads and writes arbitrary tracee state).
package ptracer

import (
	"lazypoline/internal/interpose"
	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
	"lazypoline/internal/telemetry"
)

// Mechanism is an attached ptrace interposer.
type Mechanism struct {
	// Stops counts syscall-enter stops.
	Stops int

	ip       interpose.Interposer
	k        *kernel.Kernel
	pending  map[int][]*interpose.Call
	emulated map[*interpose.Call]bool
}

// Attach attaches a tracer to the task.
func Attach(k *kernel.Kernel, t *kernel.Task, ip interpose.Interposer) *Mechanism {
	m := &Mechanism{
		ip: ip, k: k,
		pending:  make(map[int][]*interpose.Call),
		emulated: make(map[*interpose.Call]bool),
	}
	k.AttachTracer(t, &kernel.Tracer{
		OnEnter: m.onEnter,
		OnExit:  m.onExit,
	})
	if tel := k.Telemetry(); tel != nil && tel.Metrics != nil {
		tel.Metrics.AddCollector(func(r *telemetry.Registry) {
			r.Counter("ptracer.stops").Set(uint64(m.Stops))
		})
	}
	return m
}

// onEnter handles a syscall-enter stop: PTRACE_GETREGS, run the
// interposer, PTRACE_SETREGS if anything changed.
func (m *Mechanism) onEnter(stop *kernel.PtraceStop) {
	m.Stops++
	t := stop.Task
	regs := stop.GetRegs()
	c := &interpose.Call{
		Task: t,
		Nr:   int64(regs[isa.RAX]),
		Args: [6]uint64{
			regs[isa.RDI], regs[isa.RSI], regs[isa.RDX],
			regs[isa.R10], regs[isa.R8], regs[isa.R9],
		},
	}
	action := m.ip.Enter(c)
	if action == interpose.Emulate {
		// ptrace emulation idiom: rewrite the syscall number to an
		// invalid one so the kernel fails it, then patch the return value
		// at the exit stop.
		regs[isa.RAX] = uint64(int64(kernel.NonexistentSyscall))
		stop.SetRegs(regs)
		c.Task = t
		m.emulated[c] = true
		m.pending[t.ID] = append(m.pending[t.ID], c)
		return
	}
	regs[isa.RAX] = uint64(c.Nr)
	regs[isa.RDI], regs[isa.RSI], regs[isa.RDX] = c.Args[0], c.Args[1], c.Args[2]
	regs[isa.R10], regs[isa.R8], regs[isa.R9] = c.Args[3], c.Args[4], c.Args[5]
	stop.SetRegs(regs)
	m.pending[t.ID] = append(m.pending[t.ID], c)
}

// onExit handles a syscall-exit stop. In-flight emulated calls are
// tracked in the per-mechanism `emulated` registry: ptrace stops are
// synchronous per task, so no lock is needed within one machine, and
// keeping the registry on the Mechanism (not package-level) keeps
// concurrently running machines — the parallel experiment harness runs
// one per sweep cell — fully isolated.
func (m *Mechanism) onExit(stop *kernel.PtraceStop) {
	t := stop.Task
	stack := m.pending[t.ID]
	var c *interpose.Call
	if n := len(stack); n > 0 {
		c = stack[n-1]
		m.pending[t.ID] = stack[:n-1]
	} else {
		c = &interpose.Call{Task: t, Nr: -1}
	}
	regs := stop.GetRegs()
	if m.emulated[c] {
		delete(m.emulated, c)
		// Force the interposer-chosen result over the kernel's -ENOSYS.
		regs[isa.RAX] = uint64(c.Ret)
		stop.SetRegs(regs)
		m.ip.Exit(c)
		return
	}
	c.Ret = int64(regs[isa.RAX])
	before := c.Ret
	m.ip.Exit(c)
	if c.Ret != before {
		regs[isa.RAX] = uint64(c.Ret)
		stop.SetRegs(regs)
	}
}

// Detach removes the tracer.
func (m *Mechanism) Detach(t *kernel.Task) { m.k.DetachTracer(t) }
