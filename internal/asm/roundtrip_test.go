package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lazypoline/internal/isa"
)

// TestDisassembleReassembleFixpoint: assemble a program, disassemble
// every instruction, and verify each decoded instruction re-encodes to
// the identical bytes (the codec is a bijection on the encoded subset).
func TestDisassembleReassembleFixpoint(t *testing.T) {
	p, err := Assemble(`
	_start:
		mov64 rax, 0x123456789
		mov32 rbx, 77
		mov rcx, rax
		load rdx, [rsp+8]
		store [rbp-16], rsi
		loadb r8, [rdi+1]
		storeb [r9+2], r10
		load32 r11, [r12+4]
		add rax, rbx
		sub rax, rbx
		mul rax, rbx
		and rax, rbx
		or rax, rbx
		xor rax, rbx
		addi rax, -5
		cmp rax, rbx
		cmpi rax, 3
		shli rax, 2
		shri rax, 1
		push rax
		pop rax
		lea r13, _start
		movq2x xmm1, rax
		movx2q rax, xmm1
		punpck xmm2
		movups_st [rax+0], xmm3
		movups_ld xmm4, [rbx+16]
		xorps xmm5, xmm5
		fld rax
		fst rbx
		rdcycle rcx
		gsload rax, 8
		gsstore 8, rax
		gsloadb rax, 1
		gsstoreb 1, rax
		gsstorebi 0, 1
		gspush 32
		gsaddi 16, -16
		gsmovb 0, 1
		gsmov 8, 16
		gsloadidx rax, [rbx+8]
		gsloadidxb rax, rbx
		xchg rax, rbx
		xsave rax
		xrstor rax
		wrpkru rax
		rdpkru rax
		hcall 3
		pause
		nop
		syscall
		sysenter
		call rax
		jmp rbx
		int3
		hlt
		ret
	`, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	code := p.Code
	for off := 0; off < len(code); {
		in, err := isa.Decode(code[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		re := reencode(t, in)
		if len(re) != in.Len || !bytesEqual(re, code[off:off+in.Len]) {
			t.Errorf("at %d (%s): bytes % x re-encode to % x", off, in, code[off:off+in.Len], re)
		}
		off += in.Len
	}
}

// reencode rebuilds an instruction's bytes from its decoded form.
func reencode(t *testing.T, in isa.Inst) []byte {
	t.Helper()
	var e isa.Enc
	switch in.Mnem {
	case isa.MSyscall:
		e.Syscall()
	case isa.MSysenter:
		e.Sysenter()
	case isa.MCallReg:
		e.CallReg(in.A)
	case isa.MJmpReg:
		e.JmpReg(in.A)
	case isa.MOp:
		reencodeOp(&e, in)
	}
	return e.Buf
}

func reencodeOp(e *isa.Enc, in isa.Inst) {
	switch in.Op {
	case isa.OpNop:
		e.Nop(1)
	case isa.OpPause:
		e.Pause()
	case isa.OpRet:
		e.Ret()
	case isa.OpTrap:
		e.Trap()
	case isa.OpHlt:
		e.Hlt()
	case isa.OpMovImm64:
		e.MovImm64(in.A, in.Imm)
	case isa.OpMovImm32:
		e.MovImm32(in.A, in.Imm)
	case isa.OpMovReg:
		e.MovReg(in.A, in.B)
	case isa.OpLoad:
		e.Load(in.A, in.B, in.Imm)
	case isa.OpStore:
		e.Store(in.A, in.Imm, in.B)
	case isa.OpLoadB:
		e.LoadB(in.A, in.B, in.Imm)
	case isa.OpStoreB:
		e.StoreB(in.A, in.Imm, in.B)
	case isa.OpLoad32:
		e.Load32(in.A, in.B, in.Imm)
	case isa.OpAdd:
		e.Add(in.A, in.B)
	case isa.OpSub:
		e.Sub(in.A, in.B)
	case isa.OpMul:
		e.Mul(in.A, in.B)
	case isa.OpAnd:
		e.And(in.A, in.B)
	case isa.OpOr:
		e.Or(in.A, in.B)
	case isa.OpXor:
		e.Xor(in.A, in.B)
	case isa.OpAddImm:
		e.AddImm(in.A, in.Imm)
	case isa.OpCmp:
		e.Cmp(in.A, in.B)
	case isa.OpCmpImm:
		e.CmpImm(in.A, in.Imm)
	case isa.OpShlImm:
		e.ShlImm(in.A, in.Imm)
	case isa.OpShrImm:
		e.ShrImm(in.A, in.Imm)
	case isa.OpJmp:
		e.Jmp(in.Imm)
	case isa.OpJz:
		e.Jz(in.Imm)
	case isa.OpJnz:
		e.Jnz(in.Imm)
	case isa.OpJl:
		e.Jl(in.Imm)
	case isa.OpJg:
		e.Jg(in.Imm)
	case isa.OpJle:
		e.Jle(in.Imm)
	case isa.OpJge:
		e.Jge(in.Imm)
	case isa.OpCall:
		e.Call(in.Imm)
	case isa.OpPush:
		e.Push(in.A)
	case isa.OpPop:
		e.Pop(in.A)
	case isa.OpLea:
		e.Lea(in.A, in.Imm)
	case isa.OpMovQ2X:
		e.MovQ2X(isa.XReg(in.A), in.B)
	case isa.OpMovX2Q:
		e.MovX2Q(in.A, isa.XReg(in.B))
	case isa.OpPunpck:
		e.Punpck(isa.XReg(in.A))
	case isa.OpMovupsStore:
		e.MovupsStore(in.B, in.Imm, isa.XReg(in.A))
	case isa.OpMovupsLoad:
		e.MovupsLoad(isa.XReg(in.A), in.B, in.Imm)
	case isa.OpXorps:
		e.Xorps(isa.XReg(in.A), isa.XReg(in.B))
	case isa.OpFld:
		e.Fld(in.A)
	case isa.OpFst:
		e.Fst(in.A)
	case isa.OpRdCycle:
		e.RdCycle(in.A)
	case isa.OpGsLoad:
		e.GsLoad(in.A, in.Imm)
	case isa.OpGsStore:
		e.GsStore(in.Imm, in.A)
	case isa.OpGsLoadB:
		e.GsLoadB(in.A, in.Imm)
	case isa.OpGsStoreB:
		e.GsStoreB(in.Imm, in.A)
	case isa.OpGsStoreBI:
		e.GsStoreBI(in.Imm2, byte(in.Imm))
	case isa.OpGsPush:
		e.GsPush(in.Imm)
	case isa.OpGsAddI:
		e.GsAddI(in.Imm, in.Imm2)
	case isa.OpGsMovB:
		e.GsMovB(in.Imm, in.Imm2)
	case isa.OpGsMov:
		e.GsMov(in.Imm, in.Imm2)
	case isa.OpGsLoadIdx:
		e.GsLoadIdx(in.A, in.B, in.Imm)
	case isa.OpGsLoadIdxB:
		e.GsLoadIdxB(in.A, in.B)
	case isa.OpXchg:
		e.Xchg(in.A, in.B)
	case isa.OpXsave:
		e.Xsave(in.A)
	case isa.OpXrstor:
		e.Xrstor(in.A)
	case isa.OpWrpkru:
		e.Wrpkru(in.A)
	case isa.OpRdpkru:
		e.Rdpkru(in.A)
	case isa.OpHcall:
		e.Hcall(in.Imm)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRandomProgramsAssembleDeterministically generates random but valid
// programs and checks assembly is a pure function of the source.
func TestRandomProgramsAssembleDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	regs := []string{"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r13"}
	for trial := 0; trial < 50; trial++ {
		var b strings.Builder
		b.WriteString("_start:\n")
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			r := regs[rng.Intn(len(regs))]
			s := regs[rng.Intn(len(regs))]
			switch rng.Intn(7) {
			case 0:
				fmt.Fprintf(&b, "\tmov64 %s, %d\n", r, rng.Int63n(1<<40)-1<<39)
			case 1:
				fmt.Fprintf(&b, "\tmov %s, %s\n", r, s)
			case 2:
				fmt.Fprintf(&b, "\tadd %s, %s\n", r, s)
			case 3:
				fmt.Fprintf(&b, "\taddi %s, %d\n", r, rng.Intn(1000)-500)
			case 4:
				fmt.Fprintf(&b, "\tpush %s\n\tpop %s\n", r, s)
			case 5:
				b.WriteString("\tnop\n")
			case 6:
				fmt.Fprintf(&b, "\tcmpi %s, %d\n", r, rng.Intn(100))
			}
		}
		b.WriteString("\thlt\n")
		src := b.String()
		p1, err := Assemble(src, 0x1000)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		p2, err := Assemble(src, 0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if !bytesEqual(p1.Code, p2.Code) {
			t.Fatalf("trial %d: non-deterministic output", trial)
		}
		// And the output always decodes end-to-end.
		for off := 0; off < len(p1.Code); {
			in, err := isa.Decode(p1.Code[off:])
			if err != nil {
				t.Fatalf("trial %d: decode at %d: %v", trial, off, err)
			}
			off += in.Len
		}
	}
}
