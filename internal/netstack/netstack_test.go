package netstack

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestListenConnectAccept(t *testing.T) {
	s := NewStack()
	l, err := s.Listen(8080, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("accept on empty queue: %v", err)
	}
	client, err := s.Connect(8080)
	if err != nil {
		t.Fatal(err)
	}
	server, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	// Bidirectional transfer.
	if _, err := client.Write([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "GET /" {
		t.Fatalf("server read %q, %v", buf[:n], err)
	}
	if _, err := server.Write([]byte("200 OK")); err != nil {
		t.Fatal(err)
	}
	n, err = client.Read(buf)
	if err != nil || string(buf[:n]) != "200 OK" {
		t.Fatalf("client read %q, %v", buf[:n], err)
	}
}

func TestConnectRefusedAndAddrInUse(t *testing.T) {
	s := NewStack()
	if _, err := s.Connect(9999); !errors.Is(err, ErrConnRefused) {
		t.Errorf("connect to unbound port: %v", err)
	}
	if _, err := s.Listen(80, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen(80, 1); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("double bind: %v", err)
	}
}

func TestBacklogLimit(t *testing.T) {
	s := NewStack()
	l, err := s.Listen(80, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(80); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(80); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(80); !errors.Is(err, ErrBacklogFull) {
		t.Errorf("third connect: %v", err)
	}
	if _, err := l.Accept(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect(80); err != nil {
		t.Errorf("connect after drain: %v", err)
	}
}

func TestEOFAfterPeerClose(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	client, _ := s.Connect(80)
	server, _ := l.Accept()

	client.Write([]byte("bye"))
	client.Close()

	buf := make([]byte, 16)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("buffered data lost on close: %q %v", buf[:n], err)
	}
	n, err = server.Read(buf)
	if n != 0 || err != nil {
		t.Errorf("want EOF (0, nil), got %d %v", n, err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrPipe) {
		t.Errorf("write to closed peer: %v", err)
	}
}

func TestReadWouldBlockThenData(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	client, _ := s.Connect(80)
	server, _ := l.Accept()
	buf := make([]byte, 4)
	if _, err := server.Read(buf); !errors.Is(err, ErrWouldBlock) {
		t.Errorf("read with no data: %v", err)
	}
	client.Write([]byte("hi"))
	n, err := server.Read(buf)
	if err != nil || n != 2 {
		t.Errorf("read after data: %d %v", n, err)
	}
}

func TestBackpressure(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	client, _ := s.Connect(80)
	server, _ := l.Accept()

	chunk := make([]byte, 64*1024)
	total := 0
	for {
		n, err := client.Write(chunk)
		total += n
		if errors.Is(err, ErrWouldBlock) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if total > RecvBufSize {
			t.Fatalf("wrote %d bytes past the receive buffer cap", total)
		}
	}
	if total != RecvBufSize {
		t.Errorf("filled %d, want %d", total, RecvBufSize)
	}
	if server.Ready()&ReadyIn == 0 {
		t.Error("full buffer should be readable")
	}
	if client.Ready()&ReadyOut != 0 {
		t.Error("client should not be writable against a full peer")
	}
	// Drain a little; client becomes writable again.
	server.Read(make([]byte, 1024))
	if client.Ready()&ReadyOut == 0 {
		t.Error("client should be writable after drain")
	}
}

func TestReadinessTransitions(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	if l.Ready()&ReadyIn != 0 {
		t.Error("idle listener should not be readable")
	}
	client, _ := s.Connect(80)
	if l.Ready()&ReadyIn == 0 {
		t.Error("listener with pending connection should be readable")
	}
	server, _ := l.Accept()
	if server.Ready()&ReadyIn != 0 {
		t.Error("fresh connection should have no data")
	}
	if server.Ready()&ReadyOut == 0 {
		t.Error("fresh connection should be writable")
	}
	client.Write([]byte("x"))
	if server.Ready()&ReadyIn == 0 {
		t.Error("connection with data should be readable")
	}
	client.Close()
	r := server.Ready()
	if r&ReadyHup == 0 {
		t.Error("peer close should set HUP")
	}
}

func TestSubscribeWakeups(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	var mu sync.Mutex
	wakes := 0
	cancel := l.Subscribe(func() {
		mu.Lock()
		wakes++
		mu.Unlock()
	})
	s.Connect(80)
	mu.Lock()
	w := wakes
	mu.Unlock()
	if w == 0 {
		t.Error("connect did not wake listener subscriber")
	}
	cancel()
	s.Connect(80)
	mu.Lock()
	w2 := wakes
	mu.Unlock()
	if w2 != w {
		t.Error("cancelled subscriber still woken")
	}
}

func TestLargeTransferIntegrity(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	client, _ := s.Connect(80)
	server, _ := l.Accept()

	want := make([]byte, 1<<20)
	for i := range want {
		want[i] = byte(i * 7)
	}
	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 32*1024)
		for got.Len() < len(want) {
			n, err := server.Read(buf)
			if errors.Is(err, ErrWouldBlock) {
				continue
			}
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			got.Write(buf[:n])
		}
	}()
	sent := 0
	for sent < len(want) {
		n, err := client.Write(want[sent:])
		sent += n
		if err != nil && !errors.Is(err, ErrWouldBlock) {
			t.Fatalf("write: %v", err)
		}
	}
	<-done
	if !bytes.Equal(got.Bytes(), want) {
		t.Error("transfer corrupted")
	}
}

func TestListenerClose(t *testing.T) {
	s := NewStack()
	l, _ := s.Listen(80, 4)
	s.Connect(80)
	l.Close()
	if _, err := s.Connect(80); !errors.Is(err, ErrConnRefused) {
		t.Errorf("connect after close: %v", err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("accept after close: %v", err)
	}
	// Port is released.
	if _, err := s.Listen(80, 4); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}
