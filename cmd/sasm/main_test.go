package main

import (
	"os"
	"path/filepath"
	"testing"

	"lazypoline/internal/loader"
)

func TestAssembleThenDisassemble(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	out := filepath.Join(dir, "prog.self")
	if err := os.WriteFile(src, []byte(`
_start:
	mov64 rax, SYS_getpid
	syscall
	mov rdi, rax
	mov64 rax, SYS_exit
	syscall
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(src, out, false, 0x10000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0x10000 {
		t.Errorf("entry = %#x", img.Entry)
	}
	if _, ok := img.Symbol("_start"); !ok {
		t.Error("_start symbol missing from image")
	}
	// Disassembly path must succeed on the produced image.
	if err := run(out, "", true, 0x10000); err != nil {
		t.Errorf("disassemble: %v", err)
	}
}

func TestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.self")
	if err := os.WriteFile(bad, []byte("not an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "", true, 0); err == nil {
		t.Error("garbage image accepted")
	}
}
