package kernel

import (
	"testing"

	"lazypoline/internal/bpf"
)

// TestSeccompRunsBeforeSUD pins the Figure 1 entry-path ordering: a
// seccomp RET_ERRNO filter resolves the syscall before the SUD selector
// is ever consulted, so no SIGSYS fires even with the selector at BLOCK.
func TestSeccompRunsBeforeSUD(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_prctl 157
	.equ SEL 0x7fef0000
	_start:
		; enable SUD, selector = BLOCK
		mov64 rax, SYS_prctl
		mov64 rdi, 59
		mov64 rsi, 1
		mov64 rdx, 0
		mov64 r10, 0
		mov64 r8, SEL
		syscall
		mov64 rbx, SEL
		mov64 rcx, 1
		storeb [rbx], rcx
		; getpid: the seccomp filter returns -EPERM; SUD never fires
		; (a SIGSYS here would kill us — no handler is registered).
		mov64 rax, SYS_getpid
		syscall
		mov r13, rax
		; selector back to ALLOW so exit dispatches
		mov64 rbx, SEL
		mov64 rcx, 0
		storeb [rbx], rcx
		mov rdi, r13
		mov64 rax, SYS_exit
		syscall
	`)
	prog, err := bpf.ErrnoFor([]int32{SysGetpid}, EPERM)
	if err != nil {
		t.Fatal(err)
	}
	k.AttachSeccomp(task, prog)
	mustRun(t, k)
	if task.ExitCode != -EPERM {
		t.Errorf("exit = %d, want -EPERM (seccomp must resolve before SUD)", task.ExitCode)
	}
}

// TestCloneFilesSharesDescriptors: a CLONE_VM|CLONE_FILES thread opens a
// file; the parent can read through the same descriptor number.
func TestCloneFilesSharesDescriptors(t *testing.T) {
	k := New(Config{})
	if err := k.FS.WriteFile("/shared", []byte("Z"), 0o644); err != nil {
		t.Fatal(err)
	}
	task := buildTask(t, k, `
	.equ SYS_clone 56
	.equ SYS_exit_group 231
	.equ CLONE_VM 0x100
	.equ CLONE_FILES 0x400
	.equ CLONE_THREAD 0x10000
	.equ DONE 0x7fef0300
	_start:
		; child stack
		mov64 rax, 9
		mov64 rdi, 0
		mov64 rsi, 8192
		mov64 rdx, 3
		mov64 r10, 0x20
		syscall
		mov rbx, rax
		addi rbx, 8192
		mov64 rax, SYS_clone
		mov64 rdi, CLONE_VM+CLONE_FILES+CLONE_THREAD
		mov rsi, rbx
		syscall
		cmpi rax, 0
		jz child
	wait:
		mov64 rbx, DONE
		load rcx, [rbx]
		cmpi rcx, 0
		jz wait
		; rcx = the fd the child opened; read through it ourselves
		mov64 rax, SYS_read
		mov rdi, rcx
		mov64 rsi, 0x7fef0100
		mov64 rdx, 1
		syscall
		cmpi rax, 1
		jnz bad
		mov64 rbx, 0x7fef0100
		loadb rdi, [rbx]     ; 'Z'
		mov64 rax, SYS_exit_group
		syscall              ; takes the spinning thread down too
	bad:
		mov64 rdi, 1
		mov64 rax, SYS_exit_group
		syscall
	child:
		mov64 rax, SYS_open
		lea rdi, path
		mov64 rsi, 0
		mov64 rdx, 0
		syscall
		mov64 rbx, DONE
		store [rbx], rax     ; publish the fd
	spinoff:
		jmp spinoff          ; keep the shared table alive; exit_group of
		                     ; the parent takes this thread down
	path:
		.ascii "/shared"
		.byte 0
	`)
	mustRun(t, k)
	if task.ExitCode != 'Z' {
		t.Errorf("exit = %d, want 'Z' (fd table shared via CLONE_FILES)", task.ExitCode)
	}
}
