package isa

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the instruction decoder. The
// decoder is reachable from guest-controlled memory (the CPU fetches
// whatever RIP points at, and the JIT guest writes code at runtime), so
// it must never panic: every input either decodes to a well-formed Inst
// or returns an error.
func FuzzDecode(f *testing.F) {
	// Seed with one instance of every encoding shape the assembler emits.
	seeds := [][]byte{
		{},
		{0x00},
		(&Enc{}).Syscall().Buf,
		(&Enc{}).Sysenter().Buf,
		(&Enc{}).CallReg(RAX).Buf,
		(&Enc{}).JmpReg(R11).Buf,
		(&Enc{}).Ret().Buf,
		(&Enc{}).Hlt().Buf,
		(&Enc{}).Trap().Buf,
		(&Enc{}).Nop(7).Buf,
		(&Enc{}).MovImm64(RDI, -1).Buf,
		(&Enc{}).MovImm32(RSI, 1<<30).Buf,
		(&Enc{}).MovReg(RAX, RBX).Buf,
		(&Enc{}).Load(RAX, RSP, 8).Buf,
		(&Enc{}).Store(RSP, -8, RAX).Buf,
		(&Enc{}).AddImm(RCX, 123).Buf,
		(&Enc{}).CmpImm(RDX, -4).Buf,
		(&Enc{}).ShlImm(R8, 3).Buf,
		// Truncation seeds: multi-byte opcodes cut mid-encoding.
		(&Enc{}).MovImm64(RDI, -1).Buf[:5],
		(&Enc{}).Load(RAX, RSP, 8).Buf[:2],
		{byte(OpPrefix0F)},
		{byte(OpPrefixFF)},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		inst, err := Decode(b)
		if err != nil {
			return
		}
		if inst.Len <= 0 || inst.Len > len(b) {
			t.Fatalf("Decode(% x) = %+v: Len out of range [1, %d]", b, inst, len(b))
		}
		// Decoding is a pure prefix property: the bytes beyond Len must
		// not have influenced the result.
		again, err := Decode(b[:inst.Len])
		if err != nil {
			t.Fatalf("Decode(% x) ok but its own prefix fails: %v", b[:inst.Len], err)
		}
		if again != inst {
			t.Fatalf("Decode not prefix-stable: %+v vs %+v", inst, again)
		}
		// A truncated prefix must never decode to something longer than
		// itself (guards against Len bookkeeping drifting from reads).
		if inst.Len > 1 {
			short, err := Decode(bytes.Clone(b[:inst.Len-1]))
			if err == nil && short.Len >= inst.Len {
				t.Fatalf("Decode(% x) claims Len %d beyond the %d-byte buffer",
					b[:inst.Len-1], short.Len, inst.Len-1)
			}
		}
	})
}
