package kernel

import "testing"

func TestVforkBehavesLikeFork(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_vfork 58
	_start:
		mov64 rax, SYS_vfork
		syscall
		cmpi rax, 0
		jz child
		mov64 rdi, -1
		mov64 rsi, 0x7fef0100
		mov64 rdx, 0
		mov64 rax, SYS_wait4
		syscall
		mov64 rsi, 0x7fef0100
		load32 rdi, [rsi]
		mov64 rax, SYS_exit
		syscall
	child:
		mov64 rdi, 44
		mov64 rax, SYS_exit
		syscall
	`)
	mustRun(t, k)
	if task.ExitCode != 44 {
		t.Errorf("exit = %d, want child's 44", task.ExitCode)
	}
}

func TestWait4NoChildrenECHILD(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	_start:
		mov64 rdi, -1
		mov64 rsi, 0
		mov64 rdx, 0
		mov64 rax, SYS_wait4
		syscall
		mov rdi, rax
		mov64 rax, SYS_exit
		syscall
	`)
	mustRun(t, k)
	if task.ExitCode != -ECHILD {
		t.Errorf("exit = %d, want -ECHILD", task.ExitCode)
	}
}

func TestExitGroupKillsAllThreads(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_clone 56
	.equ SYS_exit_group 231
	.equ CLONE_VM 0x100
	.equ CLONE_THREAD 0x10000
	_start:
		; spawn a CLONE_VM|CLONE_THREAD sibling that spins forever
		mov64 rax, 9         ; mmap stack
		mov64 rdi, 0
		mov64 rsi, 8192
		mov64 rdx, 3
		mov64 r10, 0x20
		syscall
		mov rbx, rax
		addi rbx, 8192
		mov64 rax, SYS_clone
		mov64 rdi, CLONE_VM+CLONE_THREAD
		mov rsi, rbx
		syscall
		cmpi rax, 0
		jz spin
		; main thread: exit_group must take the spinner down too
		mov64 rdi, 3
		mov64 rax, SYS_exit_group
		syscall
	spin:
		jmp spin
	`)
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 3 {
		t.Errorf("exit = %d", task.ExitCode)
	}
	for _, other := range k.Tasks() {
		t.Errorf("task %d still alive after exit_group", other.ID)
	}
}
