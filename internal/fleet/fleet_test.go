package fleet

import (
	"reflect"
	"testing"
)

// testConfig is a small, fast farm: light per-request work so capacity
// is high and runs stay short, load sustainable by Backends-1 servers
// (the kill-drill precondition).
func testConfig() Config {
	return Config{
		Backends:     3,
		Workers:      1,
		FileSize:     512,
		AppWorkIters: 600,
		Requests:     120,
		Rate:         25,
		Seed:         42,
	}
}

func runOrFatal(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("fleet.Run: %v", err)
	}
	t.Logf("%+v", res)
	return res
}

func TestFleetSteadyState(t *testing.T) {
	res := runOrFatal(t, testConfig())
	if res.Completed != res.Requests || res.Lost != 0 {
		t.Fatalf("steady state: completed %d lost %d of %d", res.Completed, res.Lost, res.Requests)
	}
	if res.Retries != 0 {
		t.Errorf("steady state retried %d times", res.Retries)
	}
	if res.P50 == 0 || res.P99 < res.P50 {
		t.Errorf("degenerate percentiles: p50=%d p99=%d", res.P50, res.P99)
	}
	if res.Ejections != 0 || res.Readmissions != 0 {
		t.Errorf("health churn with no drill: ejections=%d readmissions=%d", res.Ejections, res.Readmissions)
	}
	if res.ProbesSent == 0 {
		t.Error("health probes never ran")
	}
}

// TestFleetBackendKillDrill is the acceptance-criteria drill: offered
// load sustainable by N-1 backends, one backend's process tree killed
// mid-run. Every request must complete (zero lost), the dead backend
// must be ejected, and post-drill tail latency must converge back to
// the same order as the pre-drill tail.
func TestFleetBackendKillDrill(t *testing.T) {
	cfg := testConfig()
	cfg.Drill = Drill{Kind: DrillKill, Backend: 1}
	res := runOrFatal(t, cfg)
	if res.Lost != 0 {
		t.Fatalf("kill drill lost %d responses", res.Lost)
	}
	if res.Completed != res.Requests {
		t.Fatalf("kill drill completed %d of %d", res.Completed, res.Requests)
	}
	if res.Ejections < 1 {
		t.Errorf("dead backend never ejected (ejections=%d)", res.Ejections)
	}
	if res.Readmissions != 0 {
		t.Errorf("dead backend readmitted (%d)", res.Readmissions)
	}
	if res.P99Post == 0 || res.P99Pre == 0 {
		t.Fatalf("empty phase percentiles: pre=%d post=%d", res.P99Pre, res.P99Post)
	}
	// Recovery: the post-drill p99 is within a small factor of the
	// undisturbed pre-drill p99 (deterministic, so the bound is tight
	// in practice; 4x leaves headroom for N-1 capacity).
	if res.P99Post > 4*res.P99Pre {
		t.Errorf("p99 did not converge: pre=%d post=%d", res.P99Pre, res.P99Post)
	}
}

func TestFleetRSTStorm(t *testing.T) {
	cfg := testConfig()
	cfg.Drill = Drill{Kind: DrillRST}
	res := runOrFatal(t, cfg)
	if res.Lost != 0 || res.Completed != res.Requests {
		t.Fatalf("RST storm: completed %d lost %d of %d", res.Completed, res.Lost, res.Requests)
	}
	if res.Retries == 0 {
		t.Error("RST storm caused no retries — storm did not fire")
	}
}

func TestFleetSlowBackend(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 150
	cfg.Drill = Drill{Kind: DrillSlow, Backend: 2, StartFrac: 0.25, StopFrac: 0.60}
	// Probe timeout sits between the healthy probe RTT (~10k cycles, one
	// idle-tick quantum) and the slowed one (~30k: every segment staged
	// behind a two-reader-poll hold), so the drill trips the health
	// checker without flapping the healthy phases.
	cfg.ProbeInterval = 150_000
	cfg.ProbeTimeout = 20_000
	res := runOrFatal(t, cfg)
	if res.Lost != 0 || res.Completed != res.Requests {
		t.Fatalf("slow drill: completed %d lost %d of %d", res.Completed, res.Lost, res.Requests)
	}
	if res.Ejections < 1 {
		t.Errorf("slow backend never ejected (probes failed: %d)", res.ProbesFailed)
	}
	if res.Readmissions < 1 {
		t.Errorf("recovered backend never readmitted")
	}
}

func TestFleetDrainDrill(t *testing.T) {
	cfg := testConfig()
	cfg.Drill = Drill{Kind: DrillDrain, Backend: 0, StartFrac: 0.3, StopFrac: 0.7}
	res := runOrFatal(t, cfg)
	if res.Lost != 0 || res.Completed != res.Requests {
		t.Fatalf("drain drill: completed %d lost %d of %d", res.Completed, res.Lost, res.Requests)
	}
	if res.DrainClosed < 1 {
		t.Error("draining closed no sessions")
	}
}

// TestFleetDeterminism: a farm run is a pure function of its config —
// two runs at the same seed produce identical Results, drill or not,
// with and without the chaos layer underneath.
func TestFleetDeterminism(t *testing.T) {
	cases := map[string]func(*Config){
		"steady": func(c *Config) {},
		"kill":   func(c *Config) { c.Drill = Drill{Kind: DrillKill, Backend: 1} },
		"chaos": func(c *Config) {
			c.ChaosSeed = 7
			c.ChaosRate = 0.002
			c.Drill = Drill{Kind: DrillRST}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Requests = 80
			mutate(&cfg)
			a := runOrFatal(t, cfg)
			b := runOrFatal(t, cfg)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same-seed runs diverged:\n a=%+v\n b=%+v", a, b)
			}
		})
	}
}

// TestFleetSeedSensitivity: different seeds give different arrival
// schedules (the generator is actually seeded, not constant).
func TestFleetSeedSensitivity(t *testing.T) {
	cfg := testConfig()
	cfg.Requests = 60
	a := runOrFatal(t, cfg)
	cfg.Seed = 43
	b := runOrFatal(t, cfg)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed change did not change the run")
	}
}

// TestFleetCoresByteIdentical: a farm run is byte-identical at every
// Cores setting (DESIGN.md §15), including through a kill drill — the
// case that exercises exit/SIGCHLD/health-check ordering under shard
// execution.
func TestFleetCoresByteIdentical(t *testing.T) {
	for _, drill := range []Drill{{}, {Kind: DrillKill, Backend: 2}} {
		cfg := testConfig()
		cfg.Requests = 80
		cfg.Drill = drill
		ref := runOrFatal(t, cfg)
		for _, cores := range []int{2, 4} {
			c := cfg
			c.Cores = cores
			if got := runOrFatal(t, c); !reflect.DeepEqual(got, ref) {
				t.Errorf("drill %q cores=%d diverged:\n got=%+v\n want=%+v", drill.Kind, cores, got, ref)
			}
		}
	}
}
