// Package interpose defines the user-facing interposer API shared by
// every mechanism in this repository (ptrace, seccomp, SUD, zpoline,
// lazypoline), plus the guest-side plumbing they share: the per-task
// %gs-relative runtime region and the generic interposer entry stub.
//
// An Interposer is maximally expressive in the paper's sense: it runs
// with full access to the guest — it can read and rewrite syscall
// numbers, arguments, return values and arbitrary guest memory, and it
// can emulate syscalls outright. Mechanisms differ only in HOW control
// reaches the interposer and at what cost.
package interpose

import (
	"encoding/binary"

	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
)

// Action tells the mechanism what to do after Enter.
type Action uint8

// Actions.
const (
	// Continue executes the (possibly modified) syscall.
	Continue Action = iota + 1
	// Emulate skips the syscall; the Call's Ret is the result.
	Emulate
)

// Call is one interposed syscall. Mutations to Nr/Args before execution
// and to Ret after are honoured by every mechanism.
type Call struct {
	// Nr is the syscall number.
	Nr int64
	// Args are the six syscall arguments.
	Args [6]uint64
	// Ret is the return value; valid in Exit, or set it in Enter together
	// with returning Emulate.
	Ret int64
	// Task is the calling task; through it interposers may inspect guest
	// state (deep argument inspection — the expressiveness seccomp-bpf
	// lacks).
	Task *kernel.Task
}

// ReadMem reads guest memory (e.g. to inspect a path argument).
func (c *Call) ReadMem(addr uint64, p []byte) error { return c.Task.AS.ReadForce(addr, p) }

// WriteMem writes guest memory (e.g. to rewrite a path argument).
func (c *Call) WriteMem(addr uint64, p []byte) error { return c.Task.AS.WriteForce(addr, p) }

// ReadString reads a NUL-terminated guest string (capped at 4096 bytes).
func (c *Call) ReadString(addr uint64) (string, bool) {
	var out []byte
	var b [1]byte
	for len(out) < 4096 {
		if err := c.Task.AS.ReadForce(addr+uint64(len(out)), b[:]); err != nil {
			return "", false
		}
		if b[0] == 0 {
			return string(out), true
		}
		out = append(out, b[0])
	}
	return "", false
}

// Interposer is the user-supplied syscall handler.
type Interposer interface {
	// Enter runs before the syscall. Return Continue to execute it (with
	// any modifications to c.Nr/c.Args) or Emulate to skip it and use
	// c.Ret as the result.
	Enter(c *Call) Action
	// Exit runs after the syscall (or after emulation) with c.Ret set;
	// it may modify c.Ret.
	Exit(c *Call)
}

// ConcurrentSafe marks an Interposer whose Enter/Exit may run
// concurrently from parallel scheduling shards (DESIGN.md §15). An
// implementation returning true promises that its hooks touch only the
// call's own task state (registers, address space, gs region) — no
// shared counters, logs or cross-task reads. Interposers without the
// marker are serialised on the deterministic frontier before every
// hook, which is always correct but forfeits multi-core scaling.
type ConcurrentSafe interface {
	ConcurrentInterposer() bool
}

// Dummy is the paper's benchmark interposer: it executes every syscall
// unmodified. All performance numbers are measured with it.
type Dummy struct{}

// Enter implements Interposer.
func (Dummy) Enter(*Call) Action { return Continue }

// Exit implements Interposer.
func (Dummy) Exit(*Call) {}

// ConcurrentInterposer implements ConcurrentSafe: Dummy is stateless.
func (Dummy) ConcurrentInterposer() bool { return true }

var _ Interposer = Dummy{}
var _ ConcurrentSafe = Dummy{}

// FuncInterposer adapts plain functions.
type FuncInterposer struct {
	OnEnter func(c *Call) Action
	OnExit  func(c *Call)
}

// Enter implements Interposer.
func (f FuncInterposer) Enter(c *Call) Action {
	if f.OnEnter == nil {
		return Continue
	}
	return f.OnEnter(c)
}

// Exit implements Interposer.
func (f FuncInterposer) Exit(c *Call) {
	if f.OnExit != nil {
		f.OnExit(c)
	}
}

// The per-task gs region layout. One page, mapped RW, pointed to by the
// task's %gs base (arch_prctl(ARCH_SET_GS)). This is the "per-task,
// %gs-relative memory region" of §IV-B: the SUD selector byte, the
// emulate flag, the xstate save stack and the sigreturn stack all live
// here, so threads sharing an address space (CLONE_VM) still get private
// copies.
const (
	// GSSelector is the SUD selector byte (offset 0).
	GSSelector = 0x00
	// GSEmulate is the emulate flag the Enter hcall sets to make the stub
	// skip the real syscall.
	GSEmulate = 0x01
	// GSSelf holds the absolute address of the gs region itself, so stubs
	// can compute absolute addresses of stack slots.
	GSSelf = 0x08
	// GSXSaveTop is the xstate stack top offset (grows up by XStateSize).
	GSXSaveTop = 0x10
	// GSSigretTop is the sigreturn stack top offset (grows up by 16).
	GSSigretTop = 0x18
	// GSSigretStack is the sigreturn stack area: frames of
	// {saved selector qword, resume rip qword}.
	GSSigretStack = 0x40
	// GSSigretStackMax bounds sigreturn nesting.
	GSSigretStackMax = GSSigretStack + 16*16
	// GSXSaveStack is the xstate stack area (6 frames of 512 bytes).
	GSXSaveStack = 0x200
	// GSSudScratch is a 7-qword scratch area (nr + 6 args) used by the
	// typical-SUD baseline's in-handler syscall sequence.
	GSSudScratch = 0xE00
	// GSSize is the region size (one page).
	GSSize = 4096
)

// InitGSRegion writes the initial control words of a gs region at base
// into the task's address space.
func InitGSRegion(t *kernel.Task, base uint64) error {
	var buf [GSSigretStack]byte
	buf[GSSelector] = kernel.SyscallDispatchFilterAllow
	binary.LittleEndian.PutUint64(buf[GSSelf:], base)
	binary.LittleEndian.PutUint64(buf[GSXSaveTop:], GSXSaveStack)
	binary.LittleEndian.PutUint64(buf[GSSigretTop:], GSSigretStack)
	return t.AS.WriteForce(base, buf[:])
}

// Saved-register layout of the generic entry stub. The stub pushes the 15
// non-RSP registers in this order (RAX first), so the LAST pushed (R15)
// is at [rsp+0] and RAX at [rsp+112]; the call-rax return address sits at
// [rsp+120].
var saveOrder = [15]isa.Reg{
	isa.RAX, isa.RCX, isa.RDX, isa.RBX, isa.RBP, isa.RSI, isa.RDI,
	isa.R8, isa.R9, isa.R10, isa.R11, isa.R12, isa.R13, isa.R14, isa.R15,
}

// SavedRegOffset returns the stack offset (from RSP inside the hcall) of
// a saved register.
func SavedRegOffset(r isa.Reg) int64 {
	for i, sr := range saveOrder {
		if sr == r {
			return int64(len(saveOrder)-1-i) * 8
		}
	}
	return -1 // RSP is not saved
}

// SavedRetAddrOffset is the stack offset of the call-rax return address.
const SavedRetAddrOffset = int64(len(saveOrder)) * 8

// ReadSavedReg reads a saved register from the stub's save area.
func ReadSavedReg(t *kernel.Task, r isa.Reg) (uint64, error) {
	return t.AS.ReadU64(t.CPU.Regs[isa.RSP] + uint64(SavedRegOffset(r)))
}

// WriteSavedReg writes a saved register in the stub's save area.
func WriteSavedReg(t *kernel.Task, r isa.Reg, v uint64) error {
	return t.AS.WriteU64(t.CPU.Regs[isa.RSP]+uint64(SavedRegOffset(r)), v)
}

// ReadCall extracts the interposed Call from the stub's save area.
func ReadCall(t *kernel.Task) (*Call, error) {
	c := &Call{Task: t}
	nr, err := ReadSavedReg(t, isa.RAX)
	if err != nil {
		return nil, err
	}
	c.Nr = int64(nr)
	argRegs := [6]isa.Reg{isa.RDI, isa.RSI, isa.RDX, isa.R10, isa.R8, isa.R9}
	for i, r := range argRegs {
		v, err := ReadSavedReg(t, r)
		if err != nil {
			return nil, err
		}
		c.Args[i] = v
	}
	return c, nil
}

// WriteCall stores (possibly modified) call registers back into the save
// area.
func WriteCall(t *kernel.Task, c *Call) error {
	if err := WriteSavedReg(t, isa.RAX, uint64(c.Nr)); err != nil {
		return err
	}
	argRegs := [6]isa.Reg{isa.RDI, isa.RSI, isa.RDX, isa.R10, isa.R8, isa.R9}
	for i, r := range argRegs {
		if err := WriteSavedReg(t, r, c.Args[i]); err != nil {
			return err
		}
	}
	return nil
}
