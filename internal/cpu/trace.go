package cpu

import "lazypoline/internal/isa"

// Hot traces (DESIGN.md §11): once a block head has been entered through
// the chain tracePromoteThreshold times, its hottest successor path is
// flattened into a single instruction sequence (bounded at
// maxTraceBlocks blocks) that executes without per-block transition
// work. Traces are shortcuts with the same validation discipline as
// chain links — every constituent block's page generations are checked
// at entry and after any code mutation, and a per-instruction pc match
// catches branches that leave the recorded path mid-trace. Two guest
// idioms hot enough to show up in every macrobenchmark get fused
// handlers instead: straight NOP runs (the zpoline sled) execute with
// closed-form batch accounting, and self-looping load/store bodies
// (memcpy-style) re-run whole iterations without re-entering the
// dispatch machinery.

// tracePromoteThreshold is the chained-entry count at which a block head
// is promoted (and re-attempted on later multiples if promotion found
// fewer than two linked blocks).
const tracePromoteThreshold = 32

// maxTraceBlocks bounds trace length so one promotion cannot flatten an
// unbounded chain.
const maxTraceBlocks = 8

// minNopSled is the shortest leading NOP run worth fusing.
const minNopSled = 4

// fusedKind classifies a block for the idiom-specific handlers.
type fusedKind uint8

const (
	fusedNone fusedKind = iota
	// fusedNopSled: the block starts with >= minNopSled consecutive NOPs.
	fusedNopSled
	// fusedLoop: a self-looping block — an ALU/load/store body whose
	// terminator is a Jnz straight back to the block entry.
	fusedLoop
)

// TraceStats counts hot-trace and fused-handler activity.
type TraceStats struct {
	// Promotions counts traces built.
	Promotions uint64
	// Invalidations counts traces torn down because a constituent block
	// was dropped or evicted.
	Invalidations uint64
	// Runs counts trace entries; Insts counts instructions retired inside
	// traces.
	Runs  uint64
	Insts uint64
	// FusedLoopIters counts whole loop iterations retired by the fused
	// loop handler; FusedNopInsts counts NOPs retired by the fused sled
	// handler.
	FusedLoopIters uint64
	FusedNopInsts  uint64
}

// SetTraces enables or disables hot-trace compilation and the fused
// idiom handlers. Traces ride on chaining; see TracesEnabled.
func (c *CPU) SetTraces(on bool) { c.traces = on }

// TracesEnabled reports whether trace execution is effective — the
// toggle is on AND chaining (and everything under it) is live.
func (c *CPU) TracesEnabled() bool {
	return c.traces && c.ChainingEnabled()
}

// TraceStats returns a snapshot of the trace counters, surviving
// decode-cache toggles the same way DecodeCacheStats does.
func (c *CPU) TraceStats() TraceStats {
	if c.cache == nil {
		return c.savedTraceStats
	}
	return c.cache.tstats
}

// traceRun is a promoted trace: the constituent blocks in execution
// order, with their instructions flattened into one pcs/insts pair.
// starts[j] is the flat index of blocks[j]'s first instruction, used to
// map a flat position back to (block, offset) when the trace bails.
type traceRun struct {
	blocks []*cachedBlock
	starts []int
	pcs    []uint64
	insts  []isa.Inst
	dead   bool
}

// classifyFused inspects a freshly built block and records which fused
// handler (if any) may execute it.
func classifyFused(b *cachedBlock) {
	n := len(b.insts)
	run := 0
	for run < n {
		in := &b.insts[run]
		if in.Mnem != isa.MOp || in.Op != isa.OpNop {
			break
		}
		run++
	}
	if run >= minNopSled {
		b.fused, b.nopLen = fusedNopSled, run
		return
	}
	if n < 2 {
		return
	}
	last := &b.insts[n-1]
	if last.Mnem != isa.MOp || last.Op != isa.OpJnz {
		return
	}
	if b.pcs[n-1]+uint64(last.Len)+uint64(last.Imm) != b.entry {
		return
	}
	for i := 0; i < n-1; i++ {
		in := &b.insts[i]
		if in.Mnem != isa.MOp || !fusedLoopOp(in.Op) {
			return
		}
	}
	b.fused = fusedLoop
}

// fusedLoopOp reports whether op may appear in a fused loop body. The
// set is restricted to operations whose only possible memory writes are
// OpStore/OpStoreB — the handler re-checks the code-mutation counter
// only after those, so admitting any other writing op (push, gs stores,
// xchg) would let self-modifying code slip past validation.
func fusedLoopOp(op isa.Op) bool {
	switch op {
	case isa.OpLoad, isa.OpStore, isa.OpLoadB, isa.OpStoreB, isa.OpLoad32,
		isa.OpMovImm64, isa.OpMovImm32, isa.OpMovReg,
		isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpAddImm, isa.OpCmp, isa.OpCmpImm, isa.OpShlImm, isa.OpShrImm:
		return true
	}
	return false
}

// kernelTerminator reports whether b's final instruction always hands
// control to the kernel — a trace never extends past such a block
// because the event ends trace execution anyway.
func kernelTerminator(b *cachedBlock) bool {
	in := &b.insts[len(b.insts)-1]
	switch in.Mnem {
	case isa.MSyscall, isa.MSysenter:
		return true
	case isa.MOp:
		switch in.Op {
		case isa.OpHlt, isa.OpTrap, isa.OpHcall:
			return true
		}
	}
	return false
}

// hotSucc picks the successor to extend a trace through: the hotter of
// the two chained slots, fall-through winning ties for determinism.
func hotSucc(b *cachedBlock) *cachedBlock {
	f, t := b.succ[chainSlotFallthrough], b.succ[chainSlotBranch]
	switch {
	case f == nil:
		return t
	case t == nil:
		return f
	case t.execCount > f.execCount:
		return t
	default:
		return f
	}
}

// runSpecialized dispatches the head-of-block fast paths after a chained
// transition landed on b (RIP == b.entry, curIdx == 0, b validated).
// Returns done=true when an event fired or the step budget ran out
// inside a handler; done=false means chained execution should continue
// from wherever (cur, curIdx) now points.
func (c *CPU) runSpecialized(b *cachedBlock, max uint64, steps *uint64, pre *uint64) (Event, bool) {
	dc := c.cache
	switch b.fused {
	case fusedNopSled:
		return c.runFusedNops(b, max, steps, pre)
	case fusedLoop:
		return c.runFusedLoop(b, max, steps, pre)
	}
	if tr := b.trace; tr != nil && !tr.dead {
		return c.runTrace(tr, max, steps, pre)
	}
	if b.trace == nil && b.execCount >= tracePromoteThreshold && b.execCount%tracePromoteThreshold == 0 {
		dc.buildTrace(b)
	}
	return EvNone, false
}

// buildTrace promotes head into a trace by walking its hottest chained
// successors. Promotion requires at least two blocks; fused blocks and
// revisits (other than closing back to head, which simply ends the walk)
// stop the extension.
func (dc *decodeCache) buildTrace(head *cachedBlock) {
	blocks := []*cachedBlock{head}
	seen := map[*cachedBlock]bool{head: true}
	b := head
	for len(blocks) < maxTraceBlocks {
		if kernelTerminator(b) {
			break
		}
		next := hotSucc(b)
		if next == nil || next.dropped || seen[next] || next.fused != fusedNone {
			break
		}
		blocks = append(blocks, next)
		seen[next] = true
		b = next
	}
	if len(blocks) < 2 {
		return
	}
	tr := &traceRun{blocks: blocks}
	for _, bb := range blocks {
		tr.starts = append(tr.starts, len(tr.pcs))
		tr.pcs = append(tr.pcs, bb.pcs...)
		tr.insts = append(tr.insts, bb.insts...)
		bb.traces = append(bb.traces, tr)
	}
	head.trace = tr
	dc.tstats.Promotions++
}

// invalidateTrace tears a trace down: marks it dead, detaches it from
// its head and every constituent block. Idempotent.
func (dc *decodeCache) invalidateTrace(tr *traceRun) {
	if tr.dead {
		return
	}
	tr.dead = true
	if h := tr.blocks[0]; h.trace == tr {
		h.trace = nil
	}
	for _, b := range tr.blocks {
		removeTrace(b, tr)
	}
	dc.tstats.Invalidations++
}

// removeTrace deletes tr from b's membership list (unordered).
func removeTrace(b *cachedBlock, tr *traceRun) {
	for i, t := range b.traces {
		if t == tr {
			b.traces[i] = b.traces[len(b.traces)-1]
			b.traces = b.traces[:len(b.traces)-1]
			return
		}
	}
}

// restore maps the flat trace position i (the next instruction index,
// 0..len(pcs)) back onto the interpreter's (cur, curIdx) state. A
// position exactly on a block boundary resolves to the *finished*
// predecessor block, so the chain-link planting in cachedInst still sees
// a completed block when the trace bails at a boundary.
func (tr *traceRun) restore(dc *decodeCache, i int) {
	j := 0
	for j+1 < len(tr.starts) && tr.starts[j+1] < i {
		j++
	}
	b := tr.blocks[j]
	if b.dropped {
		dc.cur = nil
		return
	}
	dc.cur, dc.curIdx = b, i-tr.starts[j]
}

// runTrace executes a promoted trace. Entry contract mirrors
// runSpecialized; the per-instruction pc check plus generation
// revalidation after every code mutation make the trace semantically
// identical to block-at-a-time execution.
func (c *CPU) runTrace(tr *traceRun, max uint64, steps *uint64, pre *uint64) (Event, bool) {
	dc := c.cache
	mut := dc.as.CodeMutations()
	for _, b := range tr.blocks {
		if b.mut == mut || dc.revalidate(b) {
			continue
		}
		// drop unlinks b, which tears this trace down too.
		dc.drop(b)
		tr.restore(dc, 0)
		return EvNone, false
	}
	dc.tstats.Runs++
	n := len(tr.pcs)
	i := 0
	for {
		if i >= n {
			// Clean completion: leave the interpreter at the end of the
			// final block so chaining continues from there.
			tr.restore(dc, i)
			return EvNone, false
		}
		if *steps >= max {
			tr.restore(dc, i)
			return EvNone, true
		}
		if tr.pcs[i] != c.RIP {
			// A branch left the recorded path.
			tr.restore(dc, i)
			return EvNone, false
		}
		*pre = c.Cycles
		ev := c.execInst(tr.pcs[i], &tr.insts[i])
		i++
		*steps++
		c.SuperblockInsts++
		dc.stats.Hits++
		dc.tstats.Insts++
		if ev != EvNone {
			tr.restore(dc, i)
			return ev, true
		}
		if m := dc.as.CodeMutations(); m != mut {
			mut = m
			for _, b := range tr.blocks {
				if b.mut == mut || dc.revalidate(b) {
					continue
				}
				dc.drop(b)
				tr.restore(dc, i)
				return EvNone, false
			}
		}
	}
}

// runFusedLoop re-runs a self-looping block whole iterations at a time.
// Instructions still retire through execInst — semantics, cycle charges
// and fault behaviour are exactly the interpreter's — but the per-
// instruction pc match and mutation check are replaced by the loop
// invariant (straight-line body, Jnz back to entry) and a recheck after
// the only ops able to write code (OpStore/OpStoreB). Partial iterations
// are never fused: if the remaining budget cannot fit a whole pass, the
// caller's per-instruction path finishes the quantum.
func (c *CPU) runFusedLoop(b *cachedBlock, max uint64, steps *uint64, pre *uint64) (Event, bool) {
	dc := c.cache
	n := len(b.insts)
	mut := dc.as.CodeMutations()
	if b.mut != mut && !dc.revalidate(b) {
		dc.drop(b)
		return EvNone, false
	}
	for c.RIP == b.entry && *steps+uint64(n) <= max {
		for i := 0; i < n; i++ {
			dc.curIdx = i + 1
			*pre = c.Cycles
			ev := c.execInst(b.pcs[i], &b.insts[i])
			*steps++
			c.SuperblockInsts++
			dc.stats.Hits++
			if ev != EvNone {
				return ev, true
			}
			op := b.insts[i].Op
			if op == isa.OpStore || op == isa.OpStoreB {
				if m := dc.as.CodeMutations(); m != b.mut {
					if !dc.revalidate(b) {
						dc.drop(b)
						return EvNone, false
					}
				}
			}
		}
		dc.tstats.FusedLoopIters++
	}
	if *steps >= max {
		return EvNone, true
	}
	return EvNone, false
}

// runFusedNops retires a leading NOP run with closed-form batch
// accounting — one O(1) update replacing nopLen trips through execInst.
// The arithmetic reproduces execInst's batching exactly: Cycles grows by
// one Insn per completed NopsPerCycle-sized batch, the accumulator
// carries the remainder, and *pre lands on the cycle count immediately
// before the final NOP. Bails (done=false, nothing retired) when
// batching is off — the interpreter path is then the exact semantics.
func (c *CPU) runFusedNops(b *cachedBlock, max uint64, steps *uint64, pre *uint64) (Event, bool) {
	npc := c.Costs.NopsPerCycle
	if npc <= 1 {
		return EvNone, false
	}
	dc := c.cache
	k := uint64(b.nopLen)
	if rem := max - *steps; k > rem {
		k = rem
	}
	if k == 0 {
		return EvNone, false
	}
	accum0 := c.nopAccum
	full := (accum0 + k) / npc
	*pre = c.Cycles + ((accum0+k-1)/npc)*c.Costs.Insn
	c.Cycles += full * c.Costs.Insn
	c.NopBatches += full
	c.nopAccum = (accum0 + k) % npc
	*steps += k
	c.SuperblockInsts += k
	dc.stats.Hits += k
	dc.tstats.FusedNopInsts += k
	if int(k) < len(b.pcs) {
		c.RIP = b.pcs[k]
	} else {
		c.RIP = b.end
	}
	dc.curIdx = int(k)
	if *steps >= max {
		return EvNone, true
	}
	return EvNone, false
}
