package kernel

// Telemetry wiring. Everything here is observational: hooks read task
// state (cycles, RIP, syscall numbers) and publish into the configured
// telemetry.Sink, but never charge cycles, touch guest memory, or alter
// control flow. The TestTelemetryInvariance* suite in
// internal/experiments holds the kernel to that contract byte-for-byte.

import (
	"fmt"

	"lazypoline/internal/chaos"
	"lazypoline/internal/isa"
	"lazypoline/internal/mem"
	"lazypoline/internal/otrace"
	"lazypoline/internal/telemetry"
)

// DispatchPath classifies how a syscall travelled through the entry
// path of Figure 1 — the axis the paper's overhead claims live on.
type DispatchPath uint8

// Dispatch paths. The classification is decided inside syscallEntry:
// mechanism presence first (ptrace stop, seccomp filter walk), then the
// issuing address (a syscall issued from the rewritten page-zero
// trampoline is the zpoline/lazypoline fast path), then the SUD
// selector outcome.
const (
	// PathDirect: no interception engaged — the uninstrumented baseline.
	PathDirect DispatchPath = iota
	// PathTrampoline: issued from the page-zero trampoline/entry stub —
	// the rewritten zpoline / lazypoline fast path.
	PathTrampoline
	// PathSUDAllow: SUD enabled, selector read and found at ALLOW.
	PathSUDAllow
	// PathSUDRange: issued from the always-allowed SUD code range (the
	// typical-SUD handler re-issuing the intercepted call).
	PathSUDRange
	// PathSigsys: aborted by a BLOCK selector — the SUD/SIGSYS slow path.
	PathSigsys
	// PathSeccomp: passed a seccomp filter walk and dispatched.
	PathSeccomp
	// PathSeccompNotify: aborted by RET_TRAP/RET_USER_NOTIF for
	// user-space handling.
	PathSeccompNotify
	// PathPtrace: dispatched under a ptrace tracer (enter/exit stops).
	PathPtrace
	// PathHost: synthesised by host-side interposer code via
	// Kernel.Syscall (e.g. lazypoline's rewrite mprotects).
	PathHost
	// PathPolicyRegion: aborted by the privilege-region policy — the
	// issuing instruction pointer fell outside the task's sealed set.
	PathPolicyRegion
	// PathPolicySFIP: aborted by the SFIP policy — the syscall-transition
	// automaton had no edge for the attempted transition.
	PathPolicySFIP
)

func (p DispatchPath) String() string {
	switch p {
	case PathDirect:
		return "direct"
	case PathTrampoline:
		return "trampoline"
	case PathSUDAllow:
		return "sud-allow"
	case PathSUDRange:
		return "sud-range"
	case PathSigsys:
		return "sigsys"
	case PathSeccomp:
		return "seccomp"
	case PathSeccompNotify:
		return "seccomp-notify"
	case PathPtrace:
		return "ptrace"
	case PathHost:
		return "host"
	case PathPolicyRegion:
		return "policy-region"
	case PathPolicySFIP:
		return "policy-sfip"
	}
	return "unknown"
}

// DispatchPaths lists every path name, for consumers that want a stable
// iteration order over per-path metrics.
func DispatchPaths() []string {
	ps := []DispatchPath{PathDirect, PathTrampoline, PathSUDAllow, PathSUDRange,
		PathSigsys, PathSeccomp, PathSeccompNotify, PathPtrace, PathHost,
		PathPolicyRegion, PathPolicySFIP}
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.String()
	}
	return names
}

// Telemetry returns the sink the kernel was built with (nil when
// telemetry is disabled). Mechanisms consult it at attach time to
// register their collectors.
func (k *Kernel) Telemetry() *telemetry.Sink { return k.tel }

// telBegin opens a latency measurement at the top of syscallEntry and
// pre-classifies the path from mechanism state and the issuing address.
// The SUD branch refines PathDirect into sud-allow/sud-range/sigsys
// once the selector outcome is known. Plain field writes — identical
// whether or not a sink is attached, so attaching one cannot perturb
// anything.
func (t *Task) telBegin(insnAddr uint64) {
	t.telStart = t.CPU.Cycles
	t.telActive = true
	switch {
	case t.hostSyscall:
		t.telPath = PathHost
	case t.tracer != nil:
		t.telPath = PathPtrace
	case len(t.Seccomp) > 0:
		t.telPath = PathSeccomp
	case insnAddr < mem.PageSize:
		// Page zero holds the zpoline trampoline / lazypoline entry stub.
		t.telPath = PathTrampoline
	default:
		t.telPath = PathDirect
	}
}

// telRefinePath upgrades the provisional classification (only a
// PathDirect placeholder is ever refined, so a trampoline-issued
// syscall under lazypoline stays attributed to the fast path).
func (t *Task) telRefinePath(p DispatchPath) {
	if t.telPath == PathDirect {
		t.telPath = p
	}
}

// telSyscallEnd closes the open measurement: per-path and per-syscall
// counters, the latency histogram, and a timeline slice spanning the
// whole kernel residence of the call. When a request tracer is
// attached, the same measurement is also emitted as a kernel span
// attributed to the task's adopted trace context — the join between
// the fleet's request lifecycle and the paper's dispatch-path
// attribution.
func (k *Kernel) telSyscallEnd(t *Task, nr int64) {
	if !t.telActive {
		return
	}
	t.telActive = false
	if k.trace == nil && k.tel == nil {
		return
	}
	// Measurement now, emission at the frontier: the values are captured
	// at call time so only the ordering of the shared-sink appends is
	// deferred (kernel/parallel.go).
	start, delta := t.telStart, t.CPU.Cycles-t.telStart
	path := t.telPath.String()
	ctx, lane, ret := t.traceCtx, t.ID, int64(t.CPU.Regs[isa.RAX])
	k.deferEmit(t, func() {
		if k.trace != nil {
			k.trace.KernelSpan(otrace.Span{
				Ctx:   ctx,
				Kind:  otrace.KindSys,
				Name:  SyscallName(nr),
				Start: start,
				Dur:   delta,
				Lane:  lane,
				Path:  path,
				Ret:   ret,
			})
		}
		tel := k.tel
		if tel == nil {
			return
		}
		if m := tel.Metrics; m != nil {
			m.Counter("kernel.dispatch." + path + ".calls").Add(1)
			m.Counter("kernel.dispatch." + path + ".cycles").Add(delta)
			m.Histogram("kernel.latency." + path).Observe(delta)
			name := SyscallName(nr)
			m.Counter("kernel.syscall." + name + "." + path + ".calls").Add(1)
			m.Counter("kernel.syscall." + name + "." + path + ".cycles").Add(delta)
		}
		if tl := tel.Timeline; tl != nil {
			tl.Span(telemetry.PIDMachine, lane, SyscallName(nr), path, start, delta)
		}
	})
}

// telAdoptCtx makes the task adopt the request context stamped on a
// socket it is about to read or write — from then on, syscalls the
// task retires are attributed to that request's span tree. A plain
// field write (inert without a tracer); a zero stamp is ignored so a
// task keeps its attribution across non-request syscalls like accept
// on an idle listener.
func (t *Task) telAdoptCtx(ctx uint64) {
	if ctx != 0 {
		t.traceCtx = ctx
	}
}

// TraceCtx exposes the task's adopted request context (0 = none).
func (t *Task) TraceCtx() uint64 { return t.traceCtx }

// Trace returns the request tracer the kernel was built with (nil when
// the request plane is disabled).
func (k *Kernel) Trace() *otrace.Tracer { return k.trace }

// traceFlightDump dumps the flight-recorder ring under the given
// reason (no-op without a tracer).
func (k *Kernel) traceFlightDump(reason string) {
	if k.trace != nil {
		k.trace.DumpFlight(reason, k.Now())
	}
}

// telAbort closes the measurement for a syscall that never reached the
// dispatch table (SUD BLOCK, seccomp RET_TRAP/RET_USER_NOTIF): the
// recorded latency covers the kernel entry work up to the SIGSYS post.
func (k *Kernel) telAbort(t *Task, p DispatchPath, nr int64) {
	if !t.telActive {
		return
	}
	t.telPath = p
	if k.tel != nil && k.tel.Metrics != nil {
		k.tel.Metrics.Counter("kernel.abort." + p.String()).Add(1)
	}
	k.telSyscallEnd(t, nr)
}

// telTaskStarted names the new task's timeline and profiler lanes.
func (k *Kernel) telTaskStarted(t *Task) {
	if k.tel == nil {
		return
	}
	name := t.Name
	if name == "" {
		name = "task"
	}
	t.telLabel = fmt.Sprintf("%s/%d", name, t.ID)
	if tl := k.tel.Timeline; tl != nil {
		tl.SetLane(telemetry.PIDMachine, t.ID, t.telLabel)
		tl.SetLane(telemetry.PIDScheduler, t.ID, t.telLabel)
	}
	if p := k.tel.Profiler; p != nil {
		p.SetLane(t.ID, t.telLabel)
	}
	if m := k.tel.Metrics; m != nil {
		m.Counter("kernel.tasks.spawned").Add(1)
	}
}

// telQuantum records one completed scheduler quantum: a slice in the
// scheduler process and one weighted profiler sample of the guest PC at
// the quantum boundary — the deterministic analogue of a perf tick.
func (k *Kernel) telQuantum(t *Task, startCycles uint64) {
	tel := k.tel
	if tel == nil {
		return
	}
	delta := t.CPU.Cycles - startCycles
	if delta == 0 {
		return
	}
	lane, rip, label := t.ID, t.CPU.RIP, t.telLabel
	k.deferEmit(t, func() {
		if p := tel.Profiler; p != nil {
			p.Sample(lane, rip, delta)
		}
		if tl := tel.Timeline; tl != nil {
			tl.Span(telemetry.PIDScheduler, lane, label, "quantum", startCycles, delta)
		}
	})
}

// telSignalDelivered opens a signal-frame slice on the task's lane and
// counts the delivery; telSigreturn closes it.
func (k *Kernel) telSignalDelivered(t *Task, sig int) {
	tel := k.tel
	if tel == nil {
		return
	}
	lane, at := t.ID, t.CPU.Cycles
	k.deferEmit(t, func() {
		if m := tel.Metrics; m != nil {
			m.Counter("kernel.signals.delivered").Add(1)
			m.Counter("kernel.signal." + SignalName(sig) + ".delivered").Add(1)
		}
		if tl := tel.Timeline; tl != nil {
			tl.Begin(telemetry.PIDMachine, lane, SignalName(sig), "signal", at)
		}
	})
}

func (k *Kernel) telSigreturn(t *Task, sig int) {
	tel := k.tel
	if tel == nil {
		return
	}
	lane, at := t.ID, t.CPU.Cycles
	k.deferEmit(t, func() {
		if m := tel.Metrics; m != nil {
			m.Counter("kernel.sigreturns").Add(1)
		}
		if tl := tel.Timeline; tl != nil {
			tl.End(telemetry.PIDMachine, lane, SignalName(sig), "signal", at)
		}
	})
}

// telCollect is the kernel's registry collector: it publishes the
// always-on substrate counters (CPU decode cache and fetch behaviour,
// address-space faults and generations, netstack queues, chaos
// injections, scheduler activity) at snapshot time. Sums are order-
// independent, so iterating tasks in scheduling order and address
// spaces through a seen-set is deterministic.
func (k *Kernel) telCollect(r *telemetry.Registry) {
	var cs cpuCacheTotals
	var chs cpuChainTotals
	var tts cpuTraceTotals
	var ts cpuTLBTotals
	var fetchWalks, nopBatches, cycles, sbRuns, sbInsts uint64
	seen := make(map[*mem.AddressSpace]bool)
	var faults, gens, codeMut uint64
	for _, t := range k.order {
		s := t.CPU.DecodeCacheStats()
		cs.hits += s.Hits
		cs.misses += s.Misses
		cs.builds += s.Builds
		cs.invalidations += s.Invalidations
		cs.rebindFlushes += s.RebindFlushes
		cs.overflowEvictions += s.OverflowEvictions
		hs := t.CPU.ChainStats()
		chs.links += hs.Links
		chs.unlinks += hs.Unlinks
		chs.transitions += hs.Transitions
		trs := t.CPU.TraceStats()
		tts.promotions += trs.Promotions
		tts.invalidations += trs.Invalidations
		tts.runs += trs.Runs
		tts.insts += trs.Insts
		tts.fusedLoopIters += trs.FusedLoopIters
		tts.fusedNopInsts += trs.FusedNopInsts
		ls := t.CPU.TLBStats()
		ts.hits += ls.Hits
		ts.misses += ls.Misses
		ts.evictions += ls.Evictions
		ts.flushes += ls.Flushes
		fetchWalks += t.CPU.FetchWalks
		nopBatches += t.CPU.NopBatches
		sbRuns += t.CPU.SuperblockRuns
		sbInsts += t.CPU.SuperblockInsts
		cycles += t.CPU.Cycles
		if !seen[t.AS] {
			seen[t.AS] = true
			ms := t.AS.Stats()
			faults += ms.Faults
			gens += ms.Generations
			codeMut += ms.CodeMutations
		}
	}
	r.Counter("cpu.decode_cache.hits").Set(cs.hits)
	r.Counter("cpu.decode_cache.misses").Set(cs.misses)
	r.Counter("cpu.decode_cache.builds").Set(cs.builds)
	r.Counter("cpu.decode_cache.invalidations").Set(cs.invalidations)
	r.Counter("cpu.decode_cache.rebind_flushes").Set(cs.rebindFlushes)
	r.Counter("cpu.decode_cache.overflow_evictions").Set(cs.overflowEvictions)
	r.Counter("cpu.chain.links").Set(chs.links)
	r.Counter("cpu.chain.unlinks").Set(chs.unlinks)
	r.Counter("cpu.chain.transitions").Set(chs.transitions)
	r.Counter("cpu.trace.promotions").Set(tts.promotions)
	r.Counter("cpu.trace.invalidations").Set(tts.invalidations)
	r.Counter("cpu.trace.runs").Set(tts.runs)
	r.Counter("cpu.trace.insts").Set(tts.insts)
	r.Counter("cpu.trace.fused_loop_iters").Set(tts.fusedLoopIters)
	r.Counter("cpu.trace.fused_nop_insts").Set(tts.fusedNopInsts)
	r.Counter("cpu.tlb.hits").Set(ts.hits)
	r.Counter("cpu.tlb.misses").Set(ts.misses)
	r.Counter("cpu.tlb.evictions").Set(ts.evictions)
	r.Counter("cpu.tlb.flushes").Set(ts.flushes)
	r.Counter("cpu.superblock.runs").Set(sbRuns)
	r.Counter("cpu.superblock.insts").Set(sbInsts)
	r.Counter("cpu.fetch_walks").Set(fetchWalks)
	r.Counter("cpu.nop_batches").Set(nopBatches)
	r.Counter("cpu.cycles_total").Set(cycles)
	r.Counter("mem.page_faults").Set(faults)
	r.Counter("mem.generation_bumps").Set(gens)
	r.Counter("mem.code_mutations").Set(codeMut)
	r.Counter("sched.quanta").Set(k.quanta.Load())

	ns := k.Net.Stats()
	r.Counter("net.conns_accepted").Set(ns.Accepted.Load())
	r.Counter("net.backlog_drops").Set(ns.BacklogDrops.Load())
	r.Counter("net.segs_dropped").Set(ns.SegsDropped.Load())
	r.Counter("net.segs_delayed").Set(ns.SegsDelayed.Load())
	r.Counter("net.resets_injected").Set(ns.Resets.Load())
	r.Gauge("net.accept_queue_high_water").Set(int64(ns.AcceptHighWater.Load()))
	r.Gauge("net.recv_buf_high_water").Set(int64(ns.RecvHighWater.Load()))

	if k.chaos != nil {
		counts := k.chaos.FireCounts()
		for site := chaos.SiteSyscallErrno; site <= chaos.SiteSchedJitter; site++ {
			if n := counts[site]; n > 0 {
				r.Counter("chaos.injections." + chaos.SiteName(site)).Set(n)
			}
		}
	}

	// Policy counters appear only when a policy layer is configured, so
	// policy-off metric snapshots stay byte-identical to a kernel built
	// without the layer.
	if k.policy != nil {
		r.Counter("policy.region.checks").Set(k.pstats.regionChecks)
		r.Counter("policy.region.seals").Set(k.pstats.regionSeals)
		r.Counter("policy.region.violations").Set(k.pstats.regionViolations)
		r.Counter("policy.sfip.checks").Set(k.pstats.sfipChecks)
		r.Counter("policy.sfip.violations").Set(k.pstats.sfipViolations)
	}
}

type cpuCacheTotals struct {
	hits, misses, builds, invalidations uint64
	rebindFlushes, overflowEvictions    uint64
}

type cpuChainTotals struct {
	links, unlinks, transitions uint64
}

type cpuTraceTotals struct {
	promotions, invalidations, runs, insts uint64
	fusedLoopIters, fusedNopInsts          uint64
}

type cpuTLBTotals struct {
	hits, misses, evictions, flushes uint64
}
