// Command fleetbench runs the fleet-scale robustness sweep: a farm of
// backend web servers behind a simulated L4 balancer, measured under
// scripted chaos drills (backend kill, RST storm, slow backend, drain)
// for every interposition mechanism, with an open-loop arrival-driven
// client. Each cell reports completion/loss, health-check churn, and the
// pre/mid/post-drill latency tail — the recovery curve.
//
// Usage:
//
//	fleetbench [-backends N] [-workers N] [-requests N] [-rate R] [-seed S] [-drills none,kill,...] [-mechs baseline,...] [-j N] [-out BENCH_fleet.json]
//	fleetbench -drills kill -mechs lazypoline -trace-out fleet_trace.json -slo-out fleet_slo.json
//
// -trace-out attaches a request tracer to every cell (DESIGN.md §14) and
// writes each cell's retained span trees; with more than one cell the
// drill/mechanism is inserted into the file name. -slo-out writes the
// per-cell SLO burn-rate reports, which are computed on every run —
// neither flag changes a byte of the -out snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lazypoline/internal/benchfmt"
	"lazypoline/internal/experiments"
	"lazypoline/internal/fleet"
	"lazypoline/internal/otrace"
	"lazypoline/internal/telemetry"
)

func main() {
	def := experiments.DefaultFleetBenchConfig()
	backends := flag.Int("backends", def.Backends, "backend server processes behind the balancer")
	workers := flag.Int("workers", def.Workers, "pre-forked workers per backend")
	fileSize := flag.Int("size", def.FileSize, "static file size in bytes")
	requests := flag.Int("requests", def.Requests, "offered requests per cell")
	rate := flag.Float64("rate", def.Rate, "offered load in requests per Mcycle")
	seed := flag.Uint64("seed", def.Seed, "arrival-schedule seed")
	drills := flag.String("drills", joinDrills(def.Drills), "chaos drills to run")
	mechs := flag.String("mechs", strings.Join(def.Mechanisms, ","), "mechanisms to measure")
	chaosSeed := flag.Uint64("chaos-seed", 0, "chaos engine seed (0 disables)")
	chaosRate := flag.Float64("chaos-rate", 0, "chaos engine per-site fault probability")
	parallel := flag.Int("j", experiments.DefaultParallelism(), "sweep cells measured concurrently")
	cores := flag.Int("cores", 1, "host cores each cell's kernel scheduler may use (results are byte-identical for every value)")
	out := flag.String("out", "BENCH_fleet.json", "machine-readable result file (empty disables)")
	traceOut := flag.String("trace-out", "", "write per-cell request span trees (.jsonl = compact lines, else Chrome/Perfetto JSON)")
	sloOut := flag.String("slo-out", "", "write per-cell SLO burn-rate reports to this benchfmt file")
	flag.Parse()

	cfg := def
	cfg.Backends = *backends
	cfg.Workers = *workers
	cfg.FileSize = *fileSize
	cfg.Requests = *requests
	cfg.Rate = *rate
	cfg.Seed = *seed
	cfg.Mechanisms = splitList(*mechs)
	cfg.ChaosSeed = *chaosSeed
	cfg.ChaosRate = *chaosRate
	cfg.Parallelism = *parallel
	cfg.Cores = *cores
	cfg.Drills = nil
	for _, s := range splitList(*drills) {
		d, err := fleet.ParseDrill(s)
		if err != nil {
			fatal(err)
		}
		cfg.Drills = append(cfg.Drills, d)
	}

	// With -trace-out, every cell gets a tracer built up front; the sweep
	// callback only looks one up, so parallel cells never race.
	type cellKey struct {
		drill fleet.DrillKind
		mech  string
	}
	tracers := map[cellKey]*otrace.Tracer{}
	if *traceOut != "" {
		for _, d := range cfg.Drills {
			for _, m := range cfg.Mechanisms {
				tracers[cellKey{d, m}] = otrace.New(otrace.Config{})
			}
		}
		cfg.Trace = func(d fleet.DrillKind, m string) *otrace.Tracer {
			return tracers[cellKey{d, m}]
		}
	}

	fmt.Printf("Fleet robustness — %d backends x %d workers, %d requests at %.0f req/Mcycle, seed %d\n",
		cfg.Backends, cfg.Workers, cfg.Requests, cfg.Rate, cfg.Seed)

	begin := time.Now()
	rows, err := experiments.FleetBench(cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(begin)

	lastDrill := ""
	for _, r := range rows {
		if r.Drill != lastDrill {
			fmt.Printf("\ndrill: %s\n", r.Drill)
			fmt.Printf("  %-22s %9s %5s %7s %6s %7s %12s %12s %30s\n",
				"mechanism", "completed", "lost", "retries", "eject", "readmit", "p50", "p99", "p99 pre/mid/post (cycles)")
			lastDrill = r.Drill
		}
		fmt.Printf("  %-22s %5d/%-3d %5d %7d %6d %7d %9.3fms %9.3fms %10d/%d/%d\n",
			r.Mechanism, r.Completed, r.Requests, r.Lost, r.Retries,
			r.Ejections, r.Readmissions, r.P50Ms, r.P99Ms, r.P99Pre, r.P99Mid, r.P99Post)
		if r.SLO.Bad > 0 || len(r.SLO.Alerts) > 0 {
			fmt.Printf("    slo: %d/%d over the %d-cycle objective", r.SLO.Bad,
				r.SLO.Good+r.SLO.Bad, r.SLO.Objective)
			for _, a := range r.SLO.Alerts {
				res := "unresolved"
				if a.ResolvedAt != 0 {
					res = fmt.Sprintf("resolved @%d", a.ResolvedAt)
				}
				fmt.Printf("; %s fired @%d burn %.1fx (%s)", a.Rule, a.FiredAt, a.Burn, res)
			}
			fmt.Println()
		}
	}
	fmt.Printf("\n%d cells in %.1fs (-j %d)\n", len(rows), wall.Seconds(), *parallel)

	if *out != "" {
		err := benchfmt.Write(*out, benchfmt.File{
			Name:        "fleet",
			Parallelism: *parallel,
			Cores:       *cores,
			WallSeconds: wall.Seconds(),
			Config:      cfg,
			Results:     rows,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *traceOut != "" {
		for _, d := range cfg.Drills {
			for _, m := range cfg.Mechanisms {
				path := *traceOut
				if len(tracers) > 1 {
					path = cellPath(*traceOut, string(d), m)
				}
				if err := writeTrace(path, tracers[cellKey{d, m}].Export()); err != nil {
					fatal(err)
				}
				fmt.Printf("wrote %s\n", path)
			}
		}
	}

	if *sloOut != "" {
		type sloRow struct {
			Drill     string           `json:"drill"`
			Mechanism string           `json:"mechanism"`
			SLO       otrace.SLOReport `json:"slo"`
		}
		srows := make([]sloRow, len(rows))
		for i, r := range rows {
			srows[i] = sloRow{Drill: r.Drill, Mechanism: r.Mechanism, SLO: r.SLO}
		}
		err := benchfmt.Write(*sloOut, benchfmt.File{
			Name:        "fleet-slo",
			Parallelism: *parallel,
			Cores:       *cores,
			WallSeconds: wall.Seconds(),
			Config:      cfg,
			Results:     srows,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *sloOut)
	}
}

// cellPath inserts the cell's drill/mechanism before the extension:
// fleet_trace.json -> fleet_trace_kill_lazypoline.json.
func cellPath(base, drill, mech string) string {
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "_" + drill + "_" + mech + ext
}

// writeTrace writes one cell's otrace export, compact JSONL for .jsonl
// paths and the Chrome/Perfetto envelope otherwise.
func writeTrace(path string, evs []telemetry.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = telemetry.EncodeJSONL(f, evs)
	} else {
		err = telemetry.EncodeChrome(f, evs)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func joinDrills(ds []fleet.DrillKind) string {
	parts := make([]string, len(ds))
	for i, d := range ds {
		parts[i] = string(d)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetbench:", err)
	os.Exit(1)
}
