package mem

import (
	"errors"
	"testing"
)

// snapshot predecodes a fetch at addr and returns the recorded page
// generations plus the mutation count, failing the test on fetch errors.
func snapshot(t *testing.T, as *AddressSpace, addr uint64, n int) ([]PageGen, uint64) {
	t.Helper()
	buf := make([]byte, n)
	got, pages, npages, mut, err := as.FetchExecGen(addr, buf)
	if err != nil || got != n {
		t.Fatalf("FetchExecGen(%#x, %d) = %d, %v", addr, n, got, err)
	}
	return pages[:npages], mut
}

func TestWriteInvalidatesPageGen(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRWX); err != nil {
		t.Fatal(err)
	}
	pages, mut := snapshot(t, as, 0x1000, 16)
	if len(pages) != 1 {
		t.Fatalf("npages = %d, want 1", len(pages))
	}
	if m, ok := as.ValidatePages(pages); !ok || m != mut {
		t.Fatalf("fresh snapshot invalid (ok=%v mut=%d want %d)", ok, m, mut)
	}
	if err := as.WriteAt(0x1800, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ValidatePages(pages); ok {
		t.Error("snapshot still valid after a write to the page")
	}
	if as.CodeMutations() == mut {
		t.Error("CodeMutations unchanged by a write to an executable page")
	}
}

func TestDataWritesDoNotCountAsCodeMutations(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	if err := as.MapFixed(0x2000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	mut := as.CodeMutations()
	// Writes to a non-executable page (stacks, heaps, signal frames) must
	// not disturb the lock-free fast path...
	if err := as.WriteAt(0x2000, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteForce(0x2100, []byte{4}); err != nil {
		t.Fatal(err)
	}
	if got := as.CodeMutations(); got != mut {
		t.Errorf("CodeMutations = %d after data writes, want %d", got, mut)
	}
	// ...while a privileged write to code (ptrace POKEDATA, the kernel
	// patching a page) must.
	if err := as.WriteForce(0x1000, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if as.CodeMutations() == mut {
		t.Error("CodeMutations unchanged by WriteForce to an executable page")
	}
}

func TestProtectInvalidatesPageGen(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	pages, _ := snapshot(t, as, 0x1000, 16)
	mut := as.CodeMutations()
	if err := as.Protect(0x1000, PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ValidatePages(pages); ok {
		t.Error("snapshot still valid after mprotect")
	}
	if as.CodeMutations() == mut {
		t.Error("CodeMutations unchanged by Protect")
	}
}

func TestUnmapRemapNeverRevalidates(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteForce(0x1000, []byte{0x90, 0x90}); err != nil {
		t.Fatal(err)
	}
	pages, _ := snapshot(t, as, 0x1000, 2)
	if err := as.Unmap(0x1000, PageSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ValidatePages(pages); ok {
		t.Error("snapshot valid after unmap")
	}
	// Remapping the same address with the same bytes must issue a fresh
	// generation: generations are never reused, so a stale decode can
	// never come back to life.
	if err := as.MapFixed(0x1000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	if err := as.WriteForce(0x1000, []byte{0x90, 0x90}); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ValidatePages(pages); ok {
		t.Error("stale snapshot revalidated after unmap+remap at the same address")
	}
}

func TestCloneGenerationIndependence(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRWX); err != nil {
		t.Fatal(err)
	}
	pages, _ := snapshot(t, as, 0x1000, 8)

	child := as.Clone()
	// Fork copies the pages with their generations, so a snapshot taken in
	// the parent validates against the child's identical copy...
	if _, ok := child.ValidatePages(pages); !ok {
		t.Error("parent snapshot invalid against freshly cloned child")
	}
	// ...until the child diverges; and the parent never notices.
	parentMut := as.CodeMutations()
	if err := child.WriteAt(0x1000, []byte{0xC3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := child.ValidatePages(pages); ok {
		t.Error("snapshot still valid in child after child write")
	}
	if _, ok := as.ValidatePages(pages); !ok {
		t.Error("child write invalidated the parent's pages")
	}
	if as.CodeMutations() != parentMut {
		t.Error("child write advanced the parent's mutation counter")
	}
	// The clone inherits the generation sequence, so post-fork generations
	// in the child are fresh values, not reuses of parent history.
	childPages, _ := snapshot(t, child, 0x1000, 8)
	if childPages[0].Gen == pages[0].Gen {
		t.Error("child reissued a generation the parent already used")
	}
}

func TestFetchExecTailReturnsAvailAndTrueFaultAddr(t *testing.T) {
	as := NewAddressSpace()
	if err := as.MapFixed(0x1000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	// 4 bytes before the end of the last executable page.
	buf := make([]byte, 10)
	n, err := as.FetchExec(0x1FFC, buf)
	if n != 4 {
		t.Errorf("n = %d, want 4", n)
	}
	var f *Fault
	if !errors.As(err, &f) || f.Addr != 0x2000 || f.Kind != AccessExec {
		t.Errorf("err = %v, want exec fault at 0x2000", err)
	}
	// Nothing fetchable at all: the fault is at the requested address.
	n, err = as.FetchExec(0x3000, buf)
	if n != 0 {
		t.Errorf("n = %d, want 0", n)
	}
	if !errors.As(err, &f) || f.Addr != 0x3000 {
		t.Errorf("err = %v, want exec fault at 0x3000", err)
	}
	// A straddling fetch into a second executable page records both
	// generations.
	if err := as.MapFixed(0x2000, PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	got, pages, npages, _, err := as.FetchExecGen(0x1FFC, buf)
	if got != 10 || err != nil {
		t.Fatalf("straddling FetchExecGen = %d, %v", got, err)
	}
	if npages != 2 || pages[0].PN != 0x1 || pages[1].PN != 0x2 {
		t.Errorf("pages = %v (n=%d), want page numbers 1 and 2", pages, npages)
	}
}
