package kernel

import (
	"testing"

	"lazypoline/internal/chaos"
)

// TestChaosRetryInjection pins the inject-on-retry contract: when a
// blocked syscall is re-dispatched after a wakeup, the retry consults
// the chaos engine again — every dispatch of an application syscall is
// one chaos event, whether it is the first attempt or a retry.
// Regression: the resBlocked retry closure used to call dispatch
// directly, so a syscall that blocked once became immune to injection
// for the rest of its life.
//
// The guest forks over a pipe: the parent's read finds the pipe empty
// and blocks (the child burns a long compute loop first, so the parent
// reaches the read under any scheduling), then the child's write wakes
// it. The seed is chosen so that the parent's read stream does NOT fire
// on the first attempt (the read must actually block) and DOES fire on
// the retry — the injected -EINTR/-EAGAIN is only observable if the
// retry path consults the engine.
func TestChaosRetryInjection(t *testing.T) {
	const rate = 0.5
	// The parent is the first spawned task (ID 1001); its read stream is
	// independent of every other (task, syscall) stream, so replaying
	// the two draws on a fresh engine predicts the kernel's decisions
	// exactly.
	stream := uint64(1001)<<16 | uint64(SysRead)
	var seed uint64
	for s := uint64(1); s < 10_000; s++ {
		eng := chaos.New(s, rate)
		first := eng.Fire(chaos.SiteSyscallErrno, stream)
		second := eng.Fire(chaos.SiteSyscallErrno, stream)
		if !first && second {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed with (miss, fire) on the first two draws — engine broken?")
	}

	k := New(Config{ChaosSeed: seed, ChaosRate: rate})
	task := buildTask(t, k, `
	.equ SYS_pipe2 293
	_start:
		mov64 rax, SYS_pipe2
		mov64 rdi, 0x7fef0000
		mov64 rsi, 0
		syscall
		mov64 rbx, 0x7fef0000
		load32 r13, [rbx]       ; read fd
		load32 r14, [rbx+4]     ; write fd
		mov64 rax, SYS_fork
		syscall
		cmpi rax, 0
		jz child
		; parent: read blocks on the empty pipe; the wakeup retry gets
		; the injected errno
		mov64 rax, SYS_read
		mov rdi, r13
		mov64 rsi, 0x7fef0100
		mov64 rdx, 16
		syscall
		cmpi rax, -4            ; -EINTR
		jz injected
		cmpi rax, -11           ; -EAGAIN
		jz injected
		mov64 rdi, 9            ; data arrived: retry skipped the engine
		mov64 rax, SYS_exit
		syscall
	injected:
		mov64 rdi, 42
		mov64 rax, SYS_exit
		syscall
	child:
		; burn cycles so the parent blocks first even under injected
		; scheduler jitter
		mov64 rcx, 20000
	spin:
		addi rcx, -1
		jnz spin
		; hardened write: retry injected -EINTR/-EAGAIN until delivered
	wloop:
		mov64 rax, SYS_write
		mov rdi, r14
		lea rsi, msg
		mov64 rdx, 6
		syscall
		cmpi rax, 0
		jg wdone
		cmpi rax, -4
		jz wloop
		cmpi rax, -11
		jz wloop
	wdone:
		mov64 rdi, 0
		mov64 rax, SYS_exit
		syscall
	msg:
		.ascii "hello\n"
	`)
	mustRun(t, k)
	if task.ExitCode != 42 {
		t.Errorf("exit = %d, want 42 (retried read must receive the injected errno)", task.ExitCode)
	}
}
