// Command exhaustive regenerates the paper's §V-A exhaustiveness
// evaluation: a tcc-like JIT guest compiles a program containing a
// singular, non-libc getpid at run time; the same workload is traced
// under SUD, zpoline and lazypoline. With -matrix, it additionally
// prints the empirically derived Table I characteristics matrix.
//
// Usage:
//
//	exhaustive [-matrix]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lazypoline/internal/experiments"
	"lazypoline/internal/kernel"
)

func main() {
	matrix := flag.Bool("matrix", false, "also print the Table I characteristics matrix")
	flag.Parse()

	if err := run(*matrix); err != nil {
		fmt.Fprintln(os.Stderr, "exhaustive:", err)
		os.Exit(1)
	}
}

func run(matrix bool) error {
	fmt.Println("§V-A exhaustiveness — JIT (tcc -run analogue) traced under each mechanism")
	fmt.Println()
	results, err := experiments.Exhaustiveness()
	if err != nil {
		return err
	}
	for _, r := range results {
		names := make([]string, len(r.Trace))
		for i, nr := range r.Trace {
			names[i] = kernel.SyscallName(nr)
		}
		fmt.Printf("%s trace (%d syscalls):\n  %s\n", r.Mechanism, len(r.Trace), strings.Join(names, ", "))
		fmt.Printf("  JIT-generated getpid interposed: %v", r.SawJITGetpid)
		if r.MatchesGroundTruth {
			fmt.Printf(" — trace complete (matches kernel ground truth)\n\n")
		} else {
			fmt.Printf(" — INCOMPLETE: %s\n\n", r.Diff)
		}
	}
	fmt.Println("Expected: SUD and lazypoline print the exact same syscalls (incl. getpid);")
	fmt.Println("zpoline's trace does not include it — the instruction did not exist at scan time.")

	if !matrix {
		return nil
	}
	fmt.Println("\nTable I — characteristics (measured)")
	rows, err := experiments.Table1(10_000)
	if err != nil {
		return err
	}
	fullOrLimited := func(b bool) string {
		if b {
			return "Full"
		}
		return "Limited"
	}
	check := func(b bool) string {
		if b {
			return "yes"
		}
		return "NO"
	}
	fmt.Printf("\n  %-14s %-14s %-14s %-10s %10s\n", "mechanism", "expressive", "exhaustive", "efficiency", "overhead")
	for _, r := range rows {
		fmt.Printf("  %-14s %-14s %-14s %-10s %9.1fx\n",
			r.Mechanism, fullOrLimited(r.Expressive), check(r.Exhaustive), r.Efficiency, r.Overhead)
	}
	return nil
}
