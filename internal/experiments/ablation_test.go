package experiments

import "testing"

func TestAblationMPK(t *testing.T) {
	lp, err := Table2Single(MechLazypoline, 2000)
	if err != nil {
		t.Fatal(err)
	}
	mpk, err := Table2Single(MechLazypolineMPK, 2000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("lazypoline=%.1f +MPK=%.1f (+%.1f cycles/call)", lp, mpk, mpk-lp)
	if mpk <= lp {
		t.Error("MPK protection should cost a few cycles")
	}
	if mpk-lp > 60 {
		t.Errorf("MPK overhead %.1f cycles/call seems too high", mpk-lp)
	}
}
