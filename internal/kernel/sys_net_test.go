package kernel

import (
	"errors"
	"testing"

	"lazypoline/internal/netstack"
)

// echoServer is a single-connection echo server guest: accept one
// connection, read up to 64 bytes, write them back, close, exit with the
// byte count.
const echoServer = `
.equ SYS_socket 41
.equ SYS_accept 43
.equ SYS_bind 49
.equ SYS_listen 50
_start:
	mov64 rax, SYS_socket
	mov64 rdi, 2
	mov64 rsi, 1
	syscall
	mov rbx, rax          ; listenfd
	mov64 rax, SYS_bind
	mov rdi, rbx
	lea rsi, sa
	mov64 rdx, 8
	syscall
	mov64 rax, SYS_listen
	mov rdi, rbx
	mov64 rsi, 8
	syscall
	mov64 rax, SYS_accept
	mov rdi, rbx
	mov64 rsi, 0
	mov64 rdx, 0
	syscall
	mov r13, rax          ; connfd
	mov64 rax, SYS_read
	mov rdi, r13
	mov64 rsi, 0x7fef0000
	mov64 rdx, 64
	syscall
	mov r14, rax          ; n
	mov64 rax, SYS_write
	mov rdi, r13
	mov64 rsi, 0x7fef0000
	mov rdx, r14
	syscall
	mov64 rax, SYS_close
	mov rdi, r13
	syscall
	mov rdi, r14
	mov64 rax, SYS_exit
	syscall
.align 8
sa:
	.byte 2, 0, 0x1f, 0x90   ; port 8080
	.byte 0, 0, 0, 0
`

func TestGuestEchoServer(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, echoServer)

	// Boot until listening.
	listening := false
	for i := 0; i < 100 && !listening; i++ {
		k.RunSlice(100_000)
		if _, err := k.Net.Connect(9999); !errors.Is(err, netstack.ErrConnRefused) {
			t.Fatal("sanity: port 9999 should refuse")
		}
		if ep, err := k.Net.Connect(8080); err == nil {
			// Connected: drive the exchange.
			if _, err := ep.Write([]byte("ping-pong")); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 64)
			got := 0
			for iter := 0; got < 9 && iter < 100; iter++ {
				k.RunSlice(200_000)
				n, err := ep.Read(buf[got:])
				if err != nil && !errors.Is(err, netstack.ErrWouldBlock) {
					t.Fatal(err)
				}
				got += n
			}
			if string(buf[:got]) != "ping-pong" {
				t.Fatalf("echo = %q", buf[:got])
			}
			listening = true
		}
	}
	if !listening {
		t.Fatal("server never started listening")
	}
	// Let the guest finish.
	k.RunSlice(500_000)
	if task.State() != TaskZombie || task.ExitCode != 9 {
		t.Errorf("state=%v exit=%d, want zombie/9", task.State(), task.ExitCode)
	}
}

func TestEpollGuest(t *testing.T) {
	// Guest: epoll over a listener; waits for one connection, reads 4
	// bytes, exits with the first byte.
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_socket 41
	.equ SYS_accept 43
	.equ SYS_bind 49
	.equ SYS_listen 50
	.equ SYS_epoll_wait 232
	.equ SYS_epoll_ctl 233
	.equ SYS_epoll_create1 291
	_start:
		mov64 rax, SYS_socket
		mov64 rdi, 2
		mov64 rsi, 0x801
		syscall
		mov rbx, rax
		mov64 rax, SYS_bind
		mov rdi, rbx
		lea rsi, sa
		mov64 rdx, 8
		syscall
		mov64 rax, SYS_listen
		mov rdi, rbx
		mov64 rsi, 8
		syscall
		mov64 rax, SYS_epoll_create1
		mov64 rdi, 0
		syscall
		mov r14, rax
		; watch the listener
		mov64 r8, 0x7fef0040
		mov64 rcx, 1
		store [r8], rcx
		mov64 rax, SYS_epoll_ctl
		mov rdi, r14
		mov64 rsi, 1
		mov rdx, rbx
		mov r10, r8
		syscall
		; wait for the connection
		mov64 rax, SYS_epoll_wait
		mov rdi, r14
		mov64 rsi, 0x7fef0080
		mov64 rdx, 8
		mov64 r10, -1
		syscall
		; accept + read
		mov64 rax, SYS_accept
		mov rdi, rbx
		mov64 rsi, 0
		mov64 rdx, 0
		syscall
		mov r13, rax
		mov64 rax, SYS_read
		mov rdi, r13
		mov64 rsi, 0x7fef0100
		mov64 rdx, 4
		syscall
		mov64 rbx, 0x7fef0100
		loadb rdi, [rbx]
		mov64 rax, SYS_exit
		syscall
	.align 8
	sa:
		.byte 2, 0, 0x1f, 0x91   ; port 8081
		.byte 0, 0, 0, 0
	`)

	var ep *netstack.Endpoint
	for i := 0; i < 100 && ep == nil; i++ {
		k.RunSlice(100_000)
		if e, err := k.Net.Connect(8081); err == nil {
			ep = e
		}
	}
	if ep == nil {
		t.Fatal("server never listened")
	}
	if _, err := ep.Write([]byte{0x41, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && task.Alive(); i++ {
		k.RunSlice(200_000)
	}
	if task.ExitCode != 0x41 {
		t.Errorf("exit = %#x, want 0x41", task.ExitCode)
	}
}

func TestNonblockingAcceptReturnsEAGAIN(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_socket 41
	.equ SYS_accept 43
	.equ SYS_bind 49
	.equ SYS_listen 50
	_start:
		mov64 rax, SYS_socket
		mov64 rdi, 2
		mov64 rsi, 0x801      ; SOCK_NONBLOCK
		syscall
		mov rbx, rax
		mov64 rax, SYS_bind
		mov rdi, rbx
		lea rsi, sa
		mov64 rdx, 8
		syscall
		mov64 rax, SYS_listen
		mov rdi, rbx
		mov64 rsi, 8
		syscall
		mov64 rax, SYS_accept
		mov rdi, rbx
		mov64 rsi, 0
		mov64 rdx, 0
		syscall               ; no pending conns -> -EAGAIN
		mov rdi, rax
		mov64 rax, SYS_exit
		syscall
	.align 8
	sa:
		.byte 2, 0, 0x1f, 0x92
		.byte 0, 0, 0, 0
	`)
	mustRun(t, k)
	if task.ExitCode != -EAGAIN {
		t.Errorf("exit = %d, want -EAGAIN", task.ExitCode)
	}
}

func TestBindTwiceFails(t *testing.T) {
	k := New(Config{})
	task := buildTask(t, k, `
	.equ SYS_socket 41
	.equ SYS_bind 49
	.equ SYS_listen 50
	_start:
		mov64 rax, SYS_socket
		mov64 rdi, 2
		mov64 rsi, 1
		syscall
		mov rbx, rax
		mov64 rax, SYS_bind
		mov rdi, rbx
		lea rsi, sa
		mov64 rdx, 8
		syscall
		mov64 rax, SYS_listen
		mov rdi, rbx
		mov64 rsi, 8
		syscall
		; second socket on the same port
		mov64 rax, SYS_socket
		mov64 rdi, 2
		mov64 rsi, 1
		syscall
		mov r13, rax
		mov64 rax, SYS_bind
		mov rdi, r13
		lea rsi, sa
		mov64 rdx, 8
		syscall
		mov64 rax, SYS_listen
		mov rdi, r13
		mov64 rsi, 8
		syscall               ; -EADDRINUSE
		mov rdi, rax
		mov64 rax, SYS_exit
		syscall
	.align 8
	sa:
		.byte 2, 0, 0x1f, 0x93
		.byte 0, 0, 0, 0
	`)
	mustRun(t, k)
	if task.ExitCode != -EADDRINUSE {
		t.Errorf("exit = %d, want -EADDRINUSE", task.ExitCode)
	}
}
