// Package bench regenerates every table and figure of the paper's
// evaluation as Go benchmarks:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the simulation's guest-side metric (cycles per
// syscall, requests per guest-second) via b.ReportMetric, alongside the
// usual host-side ns/op. The per-experiment index lives in DESIGN.md and
// the paper-vs-measured record in EXPERIMENTS.md.
package lazypoline_test

import (
	"fmt"
	"testing"

	"lazypoline/internal/experiments"
	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/pin"
	"lazypoline/internal/webbench"

	"lazypoline/internal/core"
	"lazypoline/internal/interpose"
	"lazypoline/internal/sud"
	"lazypoline/internal/zpoline"
)

// benchIters is the microbenchmark loop length per b.N unit. The paper
// uses 100M iterations on hardware; the simulator amortises fixed costs
// within a few thousand.
const benchIters = 5000

// BenchmarkTable2 reproduces Table II: the overhead of interposing a
// non-existent syscall under each mechanism.
func BenchmarkTable2(b *testing.B) {
	for _, mech := range experiments.Table2Mechanisms {
		b.Run(mech, func(b *testing.B) {
			var cyclesPerCall float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table2Single(mech, benchIters)
				if err != nil {
					b.Fatal(err)
				}
				cyclesPerCall = rows
			}
			b.ReportMetric(cyclesPerCall, "guest-cycles/syscall")
		})
	}
}

// BenchmarkFigure4 reproduces the overhead breakdown: each component of
// lazypoline's cost reported as a metric.
func BenchmarkFigure4(b *testing.B) {
	var r experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Figure4(benchIters)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RewritingOver, "rewriting-cycles")
	b.ReportMetric(r.EnablingSUDOver, "enabling-SUD-cycles")
	b.ReportMetric(r.XStateOver, "xstate-cycles")
}

// BenchmarkTable1 reproduces the characteristics matrix probes (the
// efficiency classification is the measured part).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 reproduces the Pin-like coreutils analysis over both
// libc variants.
func BenchmarkTable3(b *testing.B) {
	var affected int
	for i := 0; i < b.N; i++ {
		rows, err := pin.Table3()
		if err != nil {
			b.Fatal(err)
		}
		affected = 0
		for _, row := range rows {
			if row.UbuntuAffected {
				affected++
			}
		}
	}
	b.ReportMetric(float64(affected), "ubuntu-affected-utils")
}

// BenchmarkExhaustiveness reproduces the §V-A JIT experiment.
func BenchmarkExhaustiveness(b *testing.B) {
	var lazySaw, zpolineSaw bool
	for i := 0; i < b.N; i++ {
		results, err := experiments.Exhaustiveness()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			switch r.Mechanism {
			case experiments.MechLazypoline:
				lazySaw = r.SawJITGetpid
			case experiments.MechZpoline:
				zpolineSaw = r.SawJITGetpid
			}
		}
	}
	if !lazySaw || zpolineSaw {
		b.Fatalf("exhaustiveness inverted: lazypoline=%v zpoline=%v", lazySaw, zpolineSaw)
	}
}

// figure5Attach builds the per-mechanism attach functions used by the
// Figure 5 benchmarks.
func figure5Attach(mech string) webbench.AttachFunc {
	switch mech {
	case "baseline":
		return nil
	case "zpoline":
		return func(k *kernel.Kernel, t *kernel.Task) error {
			_, err := zpoline.Attach(k, t, interpose.Dummy{}, zpoline.Options{})
			return err
		}
	case "lazypoline-noxstate":
		return func(k *kernel.Kernel, t *kernel.Task) error {
			_, err := core.Attach(k, t, interpose.Dummy{}, core.Options{NoXStateDefault: true})
			return err
		}
	case "lazypoline":
		return func(k *kernel.Kernel, t *kernel.Task) error {
			_, err := core.Attach(k, t, interpose.Dummy{}, core.Options{})
			return err
		}
	case "SUD":
		return func(k *kernel.Kernel, t *kernel.Task) error {
			_, err := sud.Attach(k, t, interpose.Dummy{})
			return err
		}
	}
	panic("unknown mechanism " + mech)
}

// BenchmarkFigure5 reproduces the web-server macrobenchmark on a
// representative grid: both servers, 1 and 4 workers (12 in the paper;
// reduced to keep bench wall-time reasonable — cmd/macrobench runs the
// full sweep), small and large files, all mechanisms.
func BenchmarkFigure5(b *testing.B) {
	servers := []guest.ServerStyle{guest.StyleNginx, guest.StyleLighttpd}
	mechs := []string{"baseline", "zpoline", "lazypoline-noxstate", "lazypoline", "SUD"}
	for _, server := range servers {
		for _, workers := range []int{1, 4} {
			for _, fileSize := range []int{1024, 65536} {
				for _, mech := range mechs {
					name := fmt.Sprintf("%s/%dw/%dB/%s", server, workers, fileSize, mech)
					b.Run(name, func(b *testing.B) {
						var tput float64
						for i := 0; i < b.N; i++ {
							res, err := webbench.Run(webbench.Config{
								Style:       server,
								Workers:     workers,
								FileSize:    fileSize,
								Connections: 12,
								Requests:    120,
								Attach:      figure5Attach(mech),
							})
							if err != nil {
								b.Fatal(err)
							}
							tput = res.Throughput
						}
						b.ReportMetric(tput, "guest-req/s")
					})
				}
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: host time
// per simulated microbenchmark iteration (not a paper figure; useful for
// sizing runs).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prog, err := guest.Microbench(kernel.NonexistentSyscall, int64(b.N)+1)
	if err != nil {
		b.Fatal(err)
	}
	k := kernel.New(kernel.Config{})
	if _, err := prog.Spawn(k); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := k.Run(-1); err != nil {
		b.Fatal(err)
	}
}
