package cpu

import (
	"fmt"
	"testing"

	"lazypoline/internal/isa"
)

// TestNopBatchCycleCharges pins the cycle charge for NOP runs around the
// batch width (NopsPerCycle = 8): a maximal run of n NOPs costs
// ceil(n/8) cycles, because a partial trailing batch still occupies a
// retirement cycle when the run ends.
func TestNopBatchCycleCharges(t *testing.T) {
	for _, tt := range []struct {
		nops   int
		cycles uint64 // for the NOP run alone
	}{
		{7, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3},
	} {
		t.Run(fmt.Sprintf("%d-nops", tt.nops), func(t *testing.T) {
			var e isa.Enc
			e.Nop(tt.nops)
			e.Hlt()
			c := load(t, e.Buf)
			if ev := run(t, c, tt.nops+2); ev != EvHlt {
				t.Fatalf("event = %v", ev)
			}
			if want := tt.cycles + 1; c.Cycles != want { // +1 for the hlt
				t.Errorf("cycles = %d, want %d", c.Cycles, want)
			}
		})
	}
}

// TestNopResidueDoesNotLeakAcrossRuns is the regression test for the
// partial-batch leak: two 4-NOP runs separated by a non-NOP are two
// interrupted batches (1 cycle each), not one batch accumulated across
// the interruption.
func TestNopResidueDoesNotLeakAcrossRuns(t *testing.T) {
	var e isa.Enc
	e.Nop(4)
	e.MovImm64(isa.RAX, 1)
	e.Nop(4)
	e.Hlt()
	c := load(t, e.Buf)
	if ev := run(t, c, 20); ev != EvHlt {
		t.Fatalf("event = %v", ev)
	}
	// 1 (first partial batch) + 1 (mov) + 1 (second partial batch) +
	// 1 (hlt). The leaking accumulator charged 3: the two 4-NOP runs
	// merged into a single 8-batch.
	if c.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", c.Cycles)
	}
}

// TestFlushNopBatch covers the kernel-visible flush hook used at quantum
// expiry and signal delivery.
func TestFlushNopBatch(t *testing.T) {
	var e isa.Enc
	e.Nop(3)
	e.Hlt()
	c := load(t, e.Buf)
	for i := 0; i < 3; i++ {
		if ev := c.Step(); ev != EvNone {
			t.Fatalf("event = %v", ev)
		}
	}
	if c.Cycles != 0 {
		t.Fatalf("cycles = %d mid-batch, want 0", c.Cycles)
	}
	c.FlushNopBatch()
	if c.Cycles != 1 {
		t.Errorf("cycles = %d after flush, want 1", c.Cycles)
	}
	c.FlushNopBatch() // idempotent on an empty accumulator
	if c.Cycles != 1 {
		t.Errorf("cycles = %d after second flush, want 1", c.Cycles)
	}
}
