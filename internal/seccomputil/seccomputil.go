// Package seccomputil implements the two seccomp-based interposition
// baselines of Table I:
//
//   - seccomp-bpf: the filter runs entirely in kernel space. Highly
//     efficient, exhaustive, but limited in expressiveness — a cBPF
//     program over the 64-byte seccomp_data snapshot, with no pointer
//     dereferencing and no way to modify arguments. Policies are
//     therefore restricted to allow / errno / kill decisions on shallow
//     data.
//
//   - seccomp-user: a filter returning RET_TRAP defers handling to a
//     user-space SIGSYS handler, regaining full expressiveness at the
//     cost of a signal round trip per interposed syscall (like SUD, but
//     with the additional per-syscall BPF execution).
package seccomputil

import (
	"fmt"

	"lazypoline/internal/bpf"
	"lazypoline/internal/interpose"
	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
	"lazypoline/internal/mem"
)

// BPFPolicy is the expressiveness-limited policy language of seccomp-bpf:
// per-syscall decisions on shallow data only.
type BPFPolicy struct {
	// Allowed syscall numbers pass through.
	Allowed []int32
	// Errno syscall numbers fail with the given errno.
	Errno map[int32]uint16
	// DefaultKill kills the process on anything else; otherwise the
	// default is allow.
	DefaultKill bool
}

// AttachBPF installs an in-kernel seccomp-bpf policy. There is no
// user-space component at all — and correspondingly no way to inspect
// pointer arguments or rewrite anything.
func AttachBPF(k *kernel.Kernel, t *kernel.Task, policy BPFPolicy) error {
	insns := []bpf.Instruction{bpf.LoadNr()}
	for nr, errno := range policy.Errno {
		insns = append(insns, bpf.JeqK(uint32(nr), 0, 1), bpf.Ret(bpf.RetErrno|uint32(errno)))
	}
	for _, nr := range policy.Allowed {
		insns = append(insns, bpf.JeqK(uint32(nr), 0, 1), bpf.Ret(bpf.RetAllow))
	}
	if policy.DefaultKill {
		insns = append(insns, bpf.Ret(bpf.RetKillProcess))
	} else {
		insns = append(insns, bpf.Ret(bpf.RetAllow))
	}
	prog, err := bpf.New(insns)
	if err != nil {
		return fmt.Errorf("seccomputil: build filter: %w", err)
	}
	k.AttachSeccomp(t, prog)
	return nil
}

// UserMechanism is an attached seccomp-user interposer.
type UserMechanism struct {
	// Traps counts SIGSYS activations.
	Traps int

	ip      interpose.Interposer
	k       *kernel.Kernel
	pending map[int][]*interpose.Call
}

// handlerBase places the seccomp-user SIGSYS stub next to the vdso; its
// syscalls are exempted from the filter by an instruction-pointer range
// check (the technique the paper notes is "slower than SUD's more direct
// filtering" because the BPF program still runs on every syscall).
const handlerBase = kernel.VdsoBase + 2*mem.PageSize

// AttachUser installs seccomp-user interposition: every syscall outside
// the handler/vdso range traps to a SIGSYS handler that interposes it
// with full expressiveness.
func AttachUser(k *kernel.Kernel, t *kernel.Task, ip interpose.Interposer) (*UserMechanism, error) {
	m := &UserMechanism{ip: ip, k: k, pending: make(map[int][]*interpose.Call)}
	preID := k.RegisterHcall(m.enter)
	postID := k.RegisterHcall(m.exit)

	gsBase, err := t.AS.MapAnon(interpose.GSSize, mem.ProtRW)
	if err != nil {
		return nil, err
	}
	t.CPU.GSBase = gsBase
	if err := interpose.InitGSRegion(t, gsBase); err != nil {
		return nil, err
	}

	scr := int64(interpose.GSSudScratch)
	var e isa.Enc
	e.Hcall(preID)
	e.GsLoadB(isa.RBX, interpose.GSEmulate)
	e.CmpImm(isa.RBX, 1)
	jzAt := e.Len()
	e.Jz(0)
	e.GsLoad(isa.RAX, scr+0)
	e.GsLoad(isa.RDI, scr+8)
	e.GsLoad(isa.RSI, scr+16)
	e.GsLoad(isa.RDX, scr+24)
	e.GsLoad(isa.R10, scr+32)
	e.GsLoad(isa.R8, scr+40)
	e.GsLoad(isa.R9, scr+48)
	e.Syscall() // IP inside the exempted range: the filter allows it
	e.GsStore(scr+0, isa.RAX)
	rel := int32(e.Len() - (jzAt + 5))
	e.Buf[jzAt+1] = byte(rel)
	e.Buf[jzAt+2] = byte(rel >> 8)
	e.Buf[jzAt+3] = byte(rel >> 16)
	e.Buf[jzAt+4] = byte(rel >> 24)
	e.GsStoreBI(interpose.GSEmulate, 0)
	e.Hcall(postID)
	e.Ret()

	if err := t.AS.MapFixed(handlerBase, mem.PageSize, mem.ProtRW); err != nil {
		return nil, err
	}
	if err := t.AS.WriteAt(handlerBase, e.Buf); err != nil {
		return nil, err
	}
	if err := t.AS.Protect(handlerBase, mem.PageSize, mem.ProtRX); err != nil {
		return nil, err
	}
	t.Sig.Set(kernel.SIGSYS, kernel.SigAction{Handler: handlerBase})

	// The filter: trap everything invoked outside [VdsoBase, +3 pages)
	// (vdso sigreturn + the SUD handler slot + our handler page).
	prog, err := bpf.TrapAll(kernel.VdsoBase, 3*mem.PageSize, bpf.RetTrap)
	if err != nil {
		return nil, err
	}
	k.AttachSeccomp(t, prog)
	return m, nil
}

// enter mirrors the SUD handler's pre-payload.
func (m *UserMechanism) enter(hc *kernel.HcallCtx) error {
	t := hc.Task
	ucAddr, sig, ok := t.CurrentSigFrame()
	if !ok || sig != kernel.SIGSYS {
		return fmt.Errorf("seccomputil: handler outside SIGSYS")
	}
	m.Traps++
	c := &interpose.Call{Task: t}
	rax, err := t.AS.ReadU64(ucAddr + kernel.UCReg(int(isa.RAX)))
	if err != nil {
		return err
	}
	c.Nr = int64(rax)
	argRegs := [6]isa.Reg{isa.RDI, isa.RSI, isa.RDX, isa.R10, isa.R8, isa.R9}
	for i, r := range argRegs {
		v, err := t.AS.ReadU64(ucAddr + kernel.UCReg(int(r)))
		if err != nil {
			return err
		}
		c.Args[i] = v
	}
	action := m.ip.Enter(c)
	scr := t.CPU.GSBase + interpose.GSSudScratch
	if action == interpose.Emulate {
		if err := t.AS.WriteU64(scr, uint64(c.Ret)); err != nil {
			return err
		}
		if err := t.AS.WriteForce(t.CPU.GSBase+interpose.GSEmulate, []byte{1}); err != nil {
			return err
		}
	} else {
		vals := [7]uint64{uint64(c.Nr), c.Args[0], c.Args[1], c.Args[2], c.Args[3], c.Args[4], c.Args[5]}
		for i, v := range vals {
			if err := t.AS.WriteU64(scr+uint64(8*i), v); err != nil {
				return err
			}
		}
	}
	m.pending[t.ID] = append(m.pending[t.ID], c)
	return nil
}

// exit mirrors the SUD handler's post-payload.
func (m *UserMechanism) exit(hc *kernel.HcallCtx) error {
	t := hc.Task
	ucAddr, _, ok := t.CurrentSigFrame()
	if !ok {
		return fmt.Errorf("seccomputil: exit outside signal frame")
	}
	stack := m.pending[t.ID]
	var c *interpose.Call
	if n := len(stack); n > 0 {
		c = stack[n-1]
		m.pending[t.ID] = stack[:n-1]
	} else {
		c = &interpose.Call{Task: t, Nr: -1}
	}
	ret, err := t.AS.ReadU64(t.CPU.GSBase + interpose.GSSudScratch)
	if err != nil {
		return err
	}
	c.Ret = int64(ret)
	m.ip.Exit(c)
	return t.AS.WriteU64(ucAddr+kernel.UCReg(int(isa.RAX)), uint64(c.Ret))
}
