package cpu

import (
	"lazypoline/internal/isa"
	"lazypoline/internal/mem"
)

// maxInsnLen is the longest instruction encoding (KindRegImm64).
const maxInsnLen = 10

// maxCacheBlocks bounds the per-CPU block map. Overflow evicts the
// oldest-built blocks in deterministic FIFO order (evictBatch at a time)
// instead of flushing the whole map — a full flush would sever every
// chain link and re-decode the entire working set, a perf cliff large
// guests hit repeatedly.
const maxCacheBlocks = 4096

// evictBatch is how many live blocks one overflow eviction removes.
// Evicting in batches amortises the walk; 1/8 of the cache keeps the
// newest 7/8 of the working set intact.
const evictBatch = maxCacheBlocks / 8

// cachedBlock is a predecoded straight-line run of instructions: it starts
// at entry, never crosses into a second page except for a final straddling
// instruction, and ends at the first control transfer, kernel-entry
// instruction (SYSCALL/SYSENTER/HLT/HCALL/TRAP), undecodable bytes, or the
// page boundary.
type cachedBlock struct {
	entry uint64
	// end is the pc one past the final instruction — the fall-through
	// successor's entry.
	end   uint64
	pcs   []uint64
	insts []isa.Inst
	// pages[:npages] are the generations of the page(s) the block was
	// decoded from; the block is valid exactly while they are unchanged.
	pages  [2]mem.PageGen
	npages int
	// mut is the address-space code-mutation count at the last successful
	// validation. While CodeMutations() still returns mut, revalidation is
	// a single lock-free load.
	mut uint64

	// succ holds the lazily chained successor blocks (DESIGN.md §11):
	// slot 0 is the fall-through successor (entry == end), slot 1 a
	// monomorphic slot for the most recent branch target. Links are
	// shortcuts only — every use revalidates entry and generations — and
	// are severed when either endpoint is dropped or evicted.
	succ [2]*cachedBlock
	// preds lists the (block, slot) pairs whose succ points here, so
	// dropping this block can sever every incoming link.
	preds []predLink
	// execCount counts entries at the block head (control-transfer hits
	// and chained transitions); crossing tracePromoteThreshold promotes
	// the block into a trace head.
	execCount uint64
	// trace, if non-nil, is the live promoted trace starting here.
	trace *traceRun
	// traces lists every live trace this block is a constituent of, so
	// dropping the block can invalidate them.
	traces []*traceRun
	// fused classifies the block as one of the specialized hot idioms
	// (NOP sled, self-looping load/store loop); fusedNone otherwise.
	// nopLen is the leading-NOP run length for fusedNopSled blocks.
	fused  fusedKind
	nopLen int
	// dropped marks a block that left the map (invalidation or overflow
	// eviction); a dropped block must never be linked to or executed
	// through a chain.
	dropped bool
}

// predLink is one incoming chain edge: from.succ[slot] == the block
// holding this link in its preds list.
type predLink struct {
	from *cachedBlock
	slot int
}

// DecodeCacheStats counts decode-cache activity, exposed for tests and the
// cpubench tool. Counters are cumulative for the CPU's lifetime: toggling
// the cache off and back on (SetDecodeCache) preserves them, so long-run
// harnesses that re-measure cold-start behaviour mid-run cannot
// under-report (the macrobench per-cell stats rely on this).
type DecodeCacheStats struct {
	// Hits are Steps served from a cached block.
	Hits uint64
	// Misses are Steps that found no valid cached instruction.
	Misses uint64
	// Builds counts blocks predecoded.
	Builds uint64
	// Invalidations counts blocks dropped because a recorded page
	// generation changed (self-modifying code, mprotect, unmap).
	Invalidations uint64
	// RebindFlushes counts whole-cache resets caused by an address-space
	// rebind (execve swaps the CPU to a fresh AddressSpace).
	RebindFlushes uint64
	// OverflowEvictions counts blocks evicted by the FIFO overflow
	// policy when the map reached maxCacheBlocks. Formerly overflow and
	// rebind were conflated in one Flushes counter, which made cpubench
	// flush numbers unattributable.
	OverflowEvictions uint64
}

// decodeCache is the per-CPU decoded-block cache. It is private to its
// CPU; all sharing runs through the AddressSpace generation counters, so
// two CPUs over one address space (CLONE_VM) each observe the other's
// code writes.
type decodeCache struct {
	as     *mem.AddressSpace
	blocks map[uint64]*cachedBlock // keyed by block entry pc
	cur    *cachedBlock            // block the previous Step executed from
	curIdx int                     // next sequential index into cur
	stats  DecodeCacheStats
	cstats ChainStats
	tstats TraceStats
	// fifo records blocks in build order for deterministic overflow
	// eviction; fifoHead is the first not-yet-popped index. Dropped
	// blocks linger until popped or compacted.
	fifo     []*cachedBlock
	fifoHead int
	buildBuf [mem.PageSize + maxInsnLen]byte
}

func newDecodeCache(as *mem.AddressSpace) *decodeCache {
	return &decodeCache{as: as, blocks: make(map[uint64]*cachedBlock)}
}

// SetDecodeCache enables or disables the decoded-instruction cache. The
// cache is semantically invisible — events, traces, faults and cycle
// counts are identical either way — so disabling it is only useful for
// differential testing and for measuring the cache itself.
//
// Counter lifetimes: disabling stashes the cache's cumulative counters
// and re-enabling restores them, so DecodeCacheStats / ChainStats /
// TraceStats report per-CPU totals across toggles rather than silently
// restarting from zero mid-run.
func (c *CPU) SetDecodeCache(on bool) {
	switch {
	case on && c.cache == nil:
		dc := newDecodeCache(c.AS)
		dc.stats = c.savedCacheStats
		dc.cstats = c.savedChainStats
		dc.tstats = c.savedTraceStats
		c.cache = dc
	case !on && c.cache != nil:
		c.savedCacheStats = c.cache.stats
		c.savedChainStats = c.cache.cstats
		c.savedTraceStats = c.cache.tstats
		c.cache = nil
	}
}

// DecodeCacheEnabled reports whether the decoded-instruction cache is on.
func (c *CPU) DecodeCacheEnabled() bool { return c.cache != nil }

// InvalidateDecodeCache discards every cached block. Correctness never
// requires calling it — generation validation catches every code
// mutation — but it is useful to re-measure cold-start behaviour.
func (c *CPU) InvalidateDecodeCache() {
	if c.cache != nil {
		c.cache.reset(c.AS)
	}
}

// DecodeCacheStats returns a snapshot of the cache counters. With the
// cache toggled off it returns the totals accumulated up to the toggle.
func (c *CPU) DecodeCacheStats() DecodeCacheStats {
	if c.cache == nil {
		return c.savedCacheStats
	}
	return c.cache.stats
}

// cachedInst returns the decoded instruction at pc if a validated cached
// block covers it, building a new block on miss. nil means the caller
// must use the uncached fetch+decode path (cache disabled, or the bytes
// at pc do not decode into at least one instruction).
func (c *CPU) cachedInst(pc uint64) *isa.Inst {
	dc := c.cache
	if dc == nil {
		return nil
	}
	if dc.as != c.AS {
		// The CPU was rebound to a different address space (execve); every
		// cached block belongs to the old one.
		dc.reset(c.AS)
	}
	mut := dc.as.CodeMutations()
	// Sequential hit: the previous Step executed cur[curIdx-1] and fell
	// through.
	if b := dc.cur; b != nil && dc.curIdx < len(b.pcs) && b.pcs[dc.curIdx] == pc {
		if b.mut == mut || dc.revalidate(b) {
			dc.stats.Hits++
			in := &b.insts[dc.curIdx]
			dc.curIdx++
			return in
		}
		dc.drop(b)
	}
	// prev is the chain-link source: the block whose final instruction
	// just transferred control to pc (if the previous position was
	// exactly a completed block).
	var prev *cachedBlock
	if c.chaining && c.superblock {
		if p := dc.cur; p != nil && !p.dropped && dc.curIdx == len(p.pcs) {
			prev = p
		}
	}
	// Control-transfer hit: pc is the entry of a cached block.
	if b := dc.blocks[pc]; b != nil {
		if b.mut == mut || dc.revalidate(b) {
			dc.stats.Hits++
			if prev != nil {
				dc.link(prev, b)
			}
			b.execCount++
			dc.cur, dc.curIdx = b, 1
			return &b.insts[0]
		}
		dc.drop(b)
	}
	dc.stats.Misses++
	b := dc.build(pc)
	if b == nil {
		dc.cur = nil
		return nil
	}
	if prev != nil && !prev.dropped {
		// build may have evicted prev for space; only link live blocks.
		dc.link(prev, b)
	}
	b.execCount++
	dc.cur, dc.curIdx = b, 1
	return &b.insts[0]
}

// revalidate re-checks a block's page generations under the address-space
// lock. On success the block is current as of the returned mutation
// count, so the lock-free fast path applies again until the next
// code-affecting mutation.
func (dc *decodeCache) revalidate(b *cachedBlock) bool {
	mut, ok := dc.as.ValidatePages(b.pages[:b.npages])
	if ok {
		b.mut = mut
	}
	return ok
}

// drop removes an invalidated block, severing every chain link and trace
// that touches it.
func (dc *decodeCache) drop(b *cachedBlock) {
	dc.unlink(b)
	delete(dc.blocks, b.entry)
	b.dropped = true
	if dc.cur == b {
		dc.cur = nil
	}
	dc.stats.Invalidations++
}

// evict removes a still-valid block to make room (overflow policy). Same
// unlink discipline as drop, different counter.
func (dc *decodeCache) evict(b *cachedBlock) {
	dc.unlink(b)
	delete(dc.blocks, b.entry)
	b.dropped = true
	if dc.cur == b {
		dc.cur = nil
	}
	dc.stats.OverflowEvictions++
}

// reset discards the whole cache and rebinds it to as. Every block —
// and with it every chain link and trace — is unreachable afterwards
// (cur is nil and the map is empty), so stale structures cannot execute.
func (dc *decodeCache) reset(as *mem.AddressSpace) {
	dc.as = as
	dc.blocks = make(map[uint64]*cachedBlock)
	dc.cur = nil
	dc.fifo = nil
	dc.fifoHead = 0
	dc.stats.RebindFlushes++
}

// evictForSpace pops the oldest live blocks from the build-order FIFO
// until evictBatch have been evicted (or the FIFO is exhausted, which
// cannot happen while the map is full). Deterministic: no map iteration.
func (dc *decodeCache) evictForSpace() {
	evicted := 0
	for evicted < evictBatch && dc.fifoHead < len(dc.fifo) {
		b := dc.fifo[dc.fifoHead]
		dc.fifo[dc.fifoHead] = nil
		dc.fifoHead++
		if b.dropped {
			continue
		}
		dc.evict(b)
		evicted++
	}
	if dc.fifoHead > len(dc.fifo)/2 {
		dc.compactFIFO()
	}
}

// compactFIFO rewrites the FIFO to hold only live blocks, preserving
// build order. Invalidation-dropped blocks stay in the slice until
// popped or compacted, so a JIT-heavy guest could otherwise grow it
// without limit; build triggers compaction whenever the slice doubles
// past the map bound.
func (dc *decodeCache) compactFIFO() {
	live := dc.fifo[dc.fifoHead:]
	out := dc.fifo[:0]
	for _, b := range live {
		if b != nil && !b.dropped {
			out = append(out, b)
		}
	}
	clear(dc.fifo[len(out):cap(dc.fifo)])
	dc.fifo = out
	dc.fifoHead = 0
}

// build predecodes a block starting at pc. The fetch covers pc through
// the end of its page plus maxInsnLen-1 straddle bytes, all snapshotted
// (bytes, page generations, mutation count) under one lock acquisition,
// so the block can never embed a torn view of a concurrent code write.
func (dc *decodeCache) build(pc uint64) *cachedBlock {
	limit := int(mem.PageSize - pc&(mem.PageSize-1)) // bytes from pc to its page end
	buf := dc.buildBuf[:limit+maxInsnLen-1]
	n, pages, npages, mut, _ := dc.as.FetchExecGen(pc, buf)
	if n == 0 {
		return nil
	}
	b := &cachedBlock{entry: pc, pages: pages, npages: npages, mut: mut}
	off := 0
	for off < limit && off < n {
		in, err := isa.Decode(buf[off:n])
		if err != nil {
			// Undecodable or truncated bytes are never cached: the uncached
			// path re-derives the fault with its proper address every time.
			break
		}
		b.pcs = append(b.pcs, pc+uint64(off))
		b.insts = append(b.insts, in)
		off += in.Len
		if blockTerminator(&in) {
			break
		}
	}
	if len(b.insts) == 0 {
		return nil
	}
	b.end = pc + uint64(off)
	if off <= limit && b.npages > 1 {
		// No instruction straddled into the next page; do not tie the
		// block's validity to it.
		b.npages = 1
	}
	classifyFused(b)
	if len(dc.blocks) >= maxCacheBlocks {
		dc.evictForSpace()
	}
	dc.blocks[pc] = b
	dc.fifo = append(dc.fifo, b)
	if len(dc.fifo) >= 2*maxCacheBlocks {
		dc.compactFIFO()
	}
	dc.stats.Builds++
	return b
}

// blockTerminator reports whether in ends a predecoded block: control
// transfers (the successor pc is not sequential) and instructions that
// hand control to the kernel.
func blockTerminator(in *isa.Inst) bool {
	switch in.Mnem {
	case isa.MSyscall, isa.MSysenter, isa.MCallReg, isa.MJmpReg:
		return true
	case isa.MOp:
	default:
		return false
	}
	switch in.Op {
	case isa.OpHlt, isa.OpTrap, isa.OpHcall, isa.OpRet, isa.OpCall,
		isa.OpJmp, isa.OpJz, isa.OpJnz, isa.OpJl, isa.OpJg, isa.OpJle, isa.OpJge:
		return true
	}
	return false
}
