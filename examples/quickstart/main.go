// Quickstart: boot the simulated machine, run a small guest program
// under lazypoline with a tracing interposer, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lazypoline/internal/core"
	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
)

func main() {
	// 1. A kernel with an in-memory filesystem.
	k := kernel.New(kernel.Config{})
	if err := k.FS.MkdirAll("/etc", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := k.FS.WriteFile("/etc/motd", []byte("welcome to lazypoline-go\n"), 0o644); err != nil {
		log.Fatal(err)
	}

	// 2. A guest program, written in the simulator's assembly dialect:
	//    it reads /etc/motd and writes it to stdout.
	prog, err := guest.Build("quickstart", guest.Header+`
	_start:
		mov64 rax, SYS_open
		lea rdi, path
		mov64 rsi, O_RDONLY
		mov64 rdx, 0
		syscall
		mov rbx, rax              ; fd
		mov64 rax, SYS_read
		mov rdi, rbx
		mov64 rsi, DATA
		mov64 rdx, 128
		syscall
		mov rdx, rax              ; byte count
		mov64 rax, SYS_write
		mov64 rdi, 1
		mov64 rsi, DATA
		syscall
		mov64 rax, SYS_close
		mov rdi, rbx
		syscall
		mov64 rax, SYS_exit
		mov64 rdi, 0
		syscall
	path:
		.ascii "/etc/motd"
		.byte 0
	`)
	if err != nil {
		log.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Attach lazypoline with a tracing interposer. Every syscall —
	//    lazily rewritten on first use, fast-pathed afterwards — flows
	//    through the Recorder.
	rec := &trace.Recorder{}
	rt, err := core.Attach(k, task, rec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run to completion.
	if err := k.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("syscall trace (via lazypoline):")
	for _, e := range rec.Entries() {
		fmt.Println(" ", e)
	}
	fmt.Printf("\nconsole output: %q\n", task.ConsoleOut)
	fmt.Printf("exit code: %d\n", task.ExitCode)
	fmt.Printf("lazypoline: %d slow-path activations, %d sites rewritten to call rax\n",
		rt.Stats.SlowPathHits, rt.Stats.Rewrites)
}
