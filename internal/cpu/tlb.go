package cpu

import (
	"encoding/binary"

	"lazypoline/internal/mem"
)

// tlbSize is the number of direct-mapped D-TLB entries. 64 entries cover
// 256 KiB of working set — far more than any guest's hot loop touches —
// while keeping the index mask a single AND.
const tlbSize = 64

// TLBStats counts software D-TLB activity, exposed for tests, cpubench
// and the telemetry layer. Pure observability: none of these affect
// timing or guest-visible behaviour.
type TLBStats struct {
	// Hits are data accesses served lock-free from a validated entry.
	Hits uint64
	// Misses are in-page data accesses that re-walked the page map
	// (empty slot, conflict eviction, or a stale generation).
	Misses uint64
	// Evictions counts valid entries displaced by a conflicting page.
	Evictions uint64
	// Flushes counts whole-TLB resets (address-space rebind).
	Flushes uint64
}

// tlbEntry is one direct-mapped slot: the page number tag plus the
// generation-validated handle aliasing the page's backing bytes.
type tlbEntry struct {
	pn uint64
	h  mem.PageHandle
}

// dtlb is the per-CPU software data-TLB. Like the decode cache it is
// private to its CPU (per-task); all cross-CPU coherence runs through
// the address space's per-page generation counters, so two CPUs sharing
// one address space (CLONE_VM) invalidate each other's stale entries on
// the next generation compare — and, because entries alias the single
// backing array, data written by one task is visible to the other even
// through a still-valid entry.
type dtlb struct {
	as      *mem.AddressSpace
	entries [tlbSize]tlbEntry
	stats   TLBStats
}

func newDTLB(as *mem.AddressSpace) *dtlb {
	return &dtlb{as: as}
}

// SetTLB enables or disables the software D-TLB. Like the decode cache it
// is semantically invisible — faults, traces and cycle counts are
// identical either way — so disabling it only exists for differential
// testing and for measuring the TLB itself.
func (c *CPU) SetTLB(on bool) {
	switch {
	case on && c.tlb == nil:
		c.tlb = newDTLB(c.AS)
	case !on:
		c.tlb = nil
	}
}

// TLBEnabled reports whether the software D-TLB is on.
func (c *CPU) TLBEnabled() bool { return c.tlb != nil }

// TLBStats returns a snapshot of the TLB counters.
func (c *CPU) TLBStats() TLBStats {
	if c.tlb == nil {
		return TLBStats{}
	}
	return c.tlb.stats
}

// FlushTLB drops every entry. Correctness never requires calling it —
// generation validation catches every mutation — but it is useful to
// re-measure cold-start behaviour.
func (c *CPU) FlushTLB() {
	if c.tlb != nil {
		c.tlb.reset(c.AS)
	}
}

func (d *dtlb) reset(as *mem.AddressSpace) {
	d.as = as
	d.entries = [tlbSize]tlbEntry{}
	d.stats.Flushes++
}

// lookup returns a handle for an n-byte data access at addr that lies
// entirely within one page, or nil when the caller must take the locked
// slow path (TLB off, page-crossing access, unmapped page, insufficient
// protection, pkey denial, or a write to an executable page). The slow
// path re-derives any fault with its proper address and accounting, so
// lookup never needs to construct one.
func (c *CPU) lookup(addr uint64, n int, write bool) *mem.PageHandle {
	d := c.tlb
	if d == nil {
		return nil
	}
	if d.as != c.AS {
		// The CPU was rebound to a different address space (execve); every
		// entry aliases pages of the old one.
		d.reset(c.AS)
	}
	if int(addr&(mem.PageSize-1))+n > mem.PageSize {
		return nil
	}
	pn := addr >> mem.PageShift
	e := &d.entries[pn&(tlbSize-1)]
	hit := e.h.Data != nil && e.pn == pn && e.h.Valid()
	if !hit {
		// Fill: one read-locked walk, then zero-lock hits until the page's
		// generation changes.
		d.stats.Misses++
		if e.h.Data != nil && e.pn != pn {
			d.stats.Evictions++
		}
		h, ok := d.as.PageForAccess(pn)
		if !ok {
			return nil
		}
		e.pn, e.h = pn, h
	}
	if write {
		if !e.h.DirectWrite {
			return nil
		}
	} else if e.h.Prot&mem.ProtRead == 0 {
		return nil
	}
	if !mem.PkeyAllows(c.PKRU, e.h.Pkey, write) {
		return nil
	}
	if hit {
		d.stats.Hits++
	}
	return &e.h
}

// readAt is the TLB-aware counterpart of AS.ReadAt for guest data reads.
func (c *CPU) readAt(addr uint64, p []byte) error {
	if h := c.lookup(addr, len(p), false); h != nil {
		off := addr & (mem.PageSize - 1)
		copy(p, h.Data[off:int(off)+len(p)])
		return nil
	}
	return c.AS.ReadAt(addr, p)
}

// writeAt is the TLB-aware counterpart of AS.WriteAt for guest data
// writes. Writes to executable pages always fall through to the locked
// path so generation and code-mutation bookkeeping stays exact.
func (c *CPU) writeAt(addr uint64, p []byte) error {
	if h := c.lookup(addr, len(p), true); h != nil {
		off := addr & (mem.PageSize - 1)
		copy(h.Data[off:int(off)+len(p)], p)
		return nil
	}
	return c.AS.WriteAt(addr, p)
}

// readU64 reads a little-endian uint64 with read permission.
func (c *CPU) readU64(addr uint64) (uint64, error) {
	if h := c.lookup(addr, 8, false); h != nil {
		off := addr & (mem.PageSize - 1)
		return binary.LittleEndian.Uint64(h.Data[off : off+8]), nil
	}
	return c.AS.ReadU64(addr)
}

// writeU64 writes a little-endian uint64 with write permission.
func (c *CPU) writeU64(addr, v uint64) error {
	if h := c.lookup(addr, 8, true); h != nil {
		off := addr & (mem.PageSize - 1)
		binary.LittleEndian.PutUint64(h.Data[off:off+8], v)
		return nil
	}
	return c.AS.WriteU64(addr, v)
}
