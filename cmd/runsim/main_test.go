package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunBuiltins(t *testing.T) {
	for _, builtin := range []string{"jit", "microbench", "cat", "attack-jit", "attack-seq"} {
		for _, mech := range []string{"lazypoline", "zpoline", "sud", "ldpreload", "none"} {
			t.Run(builtin+"/"+mech, func(t *testing.T) {
				if err := run(mech, false, builtin, false, "", 0, 0, telemetryOuts{}, nil); err != nil {
					t.Errorf("run(%s under %s): %v", builtin, mech, err)
				}
			})
		}
	}
}

func TestRunAssemblyFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "hello.s")
	if err := os.WriteFile(src, []byte(`
_start:
	mov64 rax, SYS_write
	mov64 rdi, 1
	lea rsi, msg
	mov64 rdx, 6
	syscall
	mov64 rax, SYS_exit
	mov64 rdi, 0
	syscall
msg:
	.ascii "hello\n"
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("lazypoline", false, "", false, "", 0, 0, telemetryOuts{}, []string{src}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("bogus-mech", false, "jit", false, "", 0, 0, telemetryOuts{}, nil); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if err := run("none", false, "bogus-builtin", false, "", 0, 0, telemetryOuts{}, nil); err == nil {
		t.Error("unknown builtin accepted")
	}
	if err := run("none", false, "", false, "", 0, 0, telemetryOuts{}, nil); err == nil {
		t.Error("missing program accepted")
	}
}
