package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event is one timeline record in Chrome trace-event form. Timestamps
// and durations are virtual cycles (the simulator has no wall clock);
// Perfetto happily displays them as microseconds, which makes 1 display
// "µs" == 1 simulated cycle.
//
// Phases used by the simulator: "X" (complete slice with duration),
// "B"/"E" (begin/end of a nested slice, e.g. a signal frame that spans
// scheduler quanta), "i" (instant), and "M" (metadata: lane and process
// names).
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   uint64            `json:"ts"`
	Dur  uint64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Process/lane IDs used by the kernel's timeline wiring. Guest activity
// (syscall frames, signal frames, rewrite windows) lives in the machine
// process with one lane per task; scheduler quanta get their own
// process so quantum slices never improperly nest with signal frames
// that span a quantum boundary.
const (
	PIDMachine   = 1
	PIDScheduler = 2
)

// Timeline accumulates events. Emission is cheap (mutex + append); all
// ordering work happens at export.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Emit appends one event.
func (tl *Timeline) Emit(ev Event) {
	tl.mu.Lock()
	tl.events = append(tl.events, ev)
	tl.mu.Unlock()
}

// Span emits a complete ("X") slice.
func (tl *Timeline) Span(pid, tid int, name, cat string, ts, dur uint64) {
	tl.Emit(Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid})
}

// Begin emits the start of a nested ("B") slice.
func (tl *Timeline) Begin(pid, tid int, name, cat string, ts uint64) {
	tl.Emit(Event{Name: name, Cat: cat, Ph: "B", TS: ts, PID: pid, TID: tid})
}

// End closes the most recent Begin on the same lane.
func (tl *Timeline) End(pid, tid int, name, cat string, ts uint64) {
	tl.Emit(Event{Name: name, Cat: cat, Ph: "E", TS: ts, PID: pid, TID: tid})
}

// SetLane names a (pid, tid) lane via a thread_name metadata event.
func (tl *Timeline) SetLane(pid, tid int, name string) {
	tl.Emit(Event{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]string{"name": name}})
}

// SetProcess names a pid via a process_name metadata event.
func (tl *Timeline) SetProcess(pid int, name string) {
	tl.Emit(Event{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]string{"name": name}})
}

// Events returns the accumulated events in export order: metadata
// first, then slices grouped by (pid, tid) and stable-sorted by
// timestamp. "X" slices are recorded at completion carrying their start
// timestamp, so raw emission order is not time order; the sort restores
// per-lane monotonicity, which Perfetto requires and the schema test
// asserts.
func (tl *Timeline) Events() []Event {
	tl.mu.Lock()
	evs := append([]Event{}, tl.events...)
	tl.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		return a.TS < b.TS
	})
	return evs
}

// Len returns the number of emitted events.
func (tl *Timeline) Len() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}

// ChromeTrace is the top-level object of a Chrome trace-event file.
type ChromeTrace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// EncodeChrome writes events as a Chrome trace-event JSON object, one
// event per line so the file diffs cleanly.
func EncodeChrome(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodeJSONL writes events in the compact JSONL form: one JSON event
// object per line, no wrapper.
func EncodeJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range evs {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeTrace reads either export format (Chrome trace-event JSON or
// JSONL), sniffing by the leading byte.
func DecodeTrace(data []byte) ([]Event, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] == '{' && bytes.Contains(trimmed[:min(len(trimmed), 64)], []byte("traceEvents")) {
		var ct ChromeTrace
		if err := json.Unmarshal(trimmed, &ct); err != nil {
			return nil, fmt.Errorf("telemetry: decode chrome trace: %w", err)
		}
		return ct.TraceEvents, nil
	}
	var evs []Event
	for i, line := range strings.Split(string(trimmed), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("telemetry: decode jsonl line %d: %w", i+1, err)
		}
		evs = append(evs, ev)
	}
	return evs, nil
}
