// Webserver: the Figure 5 macrobenchmark in miniature. A simulated
// nginx-style event-loop server serves a static file to a wrk-like
// keep-alive client, natively and under lazypoline, and the example
// prints the throughput cost of exhaustive interposition.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"lazypoline/internal/core"
	"lazypoline/internal/guest"
	"lazypoline/internal/interpose"
	"lazypoline/internal/kernel"
	"lazypoline/internal/webbench"
)

func main() {
	cfg := webbench.Config{
		Style:       guest.StyleNginx,
		Workers:     1,
		FileSize:    4096,
		Connections: 8,
		Requests:    200,
	}

	native, err := webbench.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Attach = func(k *kernel.Kernel, t *kernel.Task) error {
		_, err := core.Attach(k, t, interpose.Dummy{}, core.Options{})
		return err
	}
	interposed, err := webbench.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("nginx-style server, 1 worker, %d B static file, %d keep-alive connections, %d requests\n\n",
		cfg.FileSize, cfg.Connections, cfg.Requests)
	fmt.Printf("  native:      %10.0f req/s  (%.0f cycles/request)\n",
		native.Throughput, native.CyclesPerRequest)
	fmt.Printf("  lazypoline:  %10.0f req/s  (%.0f cycles/request)\n",
		interposed.Throughput, interposed.CyclesPerRequest)
	fmt.Printf("\n  retained throughput: %.1f%% — with EVERY syscall interposed,\n",
		100*interposed.Throughput/native.Throughput)
	fmt.Println("  including any the server might generate at run time.")
}
