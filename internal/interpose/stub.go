package interpose

import (
	"fmt"
	"sync"

	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
	"lazypoline/internal/mem"
)

// StubOpts configures the generic interposer entry stub.
type StubOpts struct {
	// UseSUD makes the stub flip the gs selector to ALLOW on entry and
	// back to BLOCK on exit (lazypoline). zpoline runs without SUD and
	// leaves the selector alone.
	UseSUD bool
	// SaveXState makes the stub xsave/xrstor the extended state to the
	// per-task gs xstate stack — the paper's ABI-compatibility feature,
	// individually toggleable exactly like lazypoline's configurable
	// option.
	SaveXState bool
	// EnterHcall / ExitHcall are the registered hcall ids for the
	// interposer's Go payload.
	EnterHcall, ExitHcall int64
	// ProtectGS wraps all gs-region accesses in WRPKRU open/close pairs
	// (the §VI security extension): the gs page is tagged with protection
	// key 1 and application code runs with writes to it disabled, so an
	// attacker cannot simply flip the SUD selector. The usual MPK caveats
	// apply (an attacker who can execute WRPKRU gadgets needs ERIM-style
	// code scanning to be stopped; see the package documentation).
	ProtectGS bool
}

// GSPkey is the protection key the gs region is tagged with when
// ProtectGS is enabled.
const GSPkey = 1

// BuildEntryStub emits the generic interposer entry point. It is entered
// like a function call with the syscall number in RAX — either from a
// rewritten `call rax`, or from the SUD slow path redirecting REG_RIP
// here after pushing a synthetic return address (§IV-A(c): the shared
// "single syscall handling implementation between the fast and slow
// path").
//
// Contract (the syscall ABI of §IV-B(b)): every general purpose register
// except RAX is preserved across the stub; RAX carries the return value.
// With SaveXState, all vector/x87 state is preserved too. The stub
// contains the only genuine SYSCALL instruction executed on behalf of
// the application; with UseSUD it runs under selector=ALLOW, so it
// dispatches without SIGSYS but still pays the SUD-enabled entry tax.
func BuildEntryStub(e *isa.Enc, opts StubOpts) {
	// Save all GPRs (except RSP) in saveOrder.
	for _, r := range saveOrder {
		e.Push(r)
	}
	if opts.ProtectGS {
		// Open the gs-region protection key for the duration of the stub.
		e.MovImm64(isa.RBX, 0)
		e.Wrpkru(isa.RBX)
	}
	if opts.UseSUD {
		e.GsStoreBI(GSSelector, kernel.SyscallDispatchFilterAllow)
	}
	if opts.SaveXState {
		// xsave to gs xstate stack top, then push the stack.
		e.GsLoad(isa.RBX, GSSelf)
		e.GsLoad(isa.RCX, GSXSaveTop)
		e.Add(isa.RBX, isa.RCX)
		e.Xsave(isa.RBX)
		e.GsAddI(GSXSaveTop, 512)
	}
	e.Hcall(opts.EnterHcall)
	// Emulation check: the Enter payload may set gs[GSEmulate]=1 to skip
	// the real syscall (it has already written the result into the saved
	// RAX slot).
	e.GsLoadB(isa.RBX, GSEmulate)
	e.CmpImm(isa.RBX, 1)
	jzAt := e.Len()
	e.Jz(0) // patched below

	// Reload the (possibly modified) syscall registers from the save
	// area and perform the real syscall.
	e.Load(isa.RAX, isa.RSP, SavedRegOffset(isa.RAX))
	e.Load(isa.RDI, isa.RSP, SavedRegOffset(isa.RDI))
	e.Load(isa.RSI, isa.RSP, SavedRegOffset(isa.RSI))
	e.Load(isa.RDX, isa.RSP, SavedRegOffset(isa.RDX))
	e.Load(isa.R10, isa.RSP, SavedRegOffset(isa.R10))
	e.Load(isa.R8, isa.RSP, SavedRegOffset(isa.R8))
	e.Load(isa.R9, isa.RSP, SavedRegOffset(isa.R9))
	e.Syscall()
	e.Store(isa.RSP, SavedRegOffset(isa.RAX), isa.RAX)

	// Patch the jz to land here (skip label).
	patchRel32(e, jzAt, e.Len())

	e.GsStoreBI(GSEmulate, 0)
	e.Hcall(opts.ExitHcall)
	if opts.SaveXState {
		e.GsAddI(GSXSaveTop, -512)
		e.GsLoad(isa.RBX, GSSelf)
		e.GsLoad(isa.RCX, GSXSaveTop)
		e.Add(isa.RBX, isa.RCX)
		e.Xrstor(isa.RBX)
	}
	if opts.UseSUD {
		e.GsStoreBI(GSSelector, kernel.SyscallDispatchFilterBlock)
	}
	if opts.ProtectGS {
		// Close the key again: the application resumes with gs writes
		// disabled.
		e.MovImm64(isa.RBX, int64(mem.PkeyWriteDisableBit(GSPkey)))
		e.Wrpkru(isa.RBX)
	}
	// Restore all GPRs; the pop of RAX loads the final return value from
	// the (stub- or payload-written) save slot.
	for i := len(saveOrder) - 1; i >= 0; i-- {
		e.Pop(saveOrder[i])
	}
	e.Ret()
}

// patchRel32 fixes up a previously emitted rel32 branch at insnOff so it
// jumps to target (both offsets within the encoder's buffer).
func patchRel32(e *isa.Enc, insnOff, target int) {
	rel := int32(target - (insnOff + 5))
	e.Buf[insnOff+1] = byte(rel)
	e.Buf[insnOff+2] = byte(rel >> 8)
	e.Buf[insnOff+3] = byte(rel >> 16)
	e.Buf[insnOff+4] = byte(rel >> 24)
}

// Binder connects an Interposer to the entry stub's two hcalls, keeping
// a per-task stack of in-flight calls (nested interposition happens when
// a signal arrives during an interposed syscall).
type Binder struct {
	ip Interposer
	// pending is keyed by task ID; a task's frames are pushed and
	// popped only from that task's own quanta, so under concurrent
	// shards the per-key operation streams commute and the mutex alone
	// keeps the map deterministic (DESIGN.md §15).
	mu      sync.Mutex
	pending map[int][]*Call
}

// NewBinder returns a Binder for ip.
func NewBinder(ip Interposer) *Binder {
	return &Binder{ip: ip, pending: make(map[int][]*Call)}
}

// Interposer returns the bound interposer.
func (b *Binder) Interposer() Interposer { return b.ip }

// Concurrent reports whether the Binder's hcall payloads may be
// registered shard-concurrent: true only when the bound interposer
// vouches for itself via ConcurrentSafe. The Binder's own state is
// safe either way (see pending).
func (b *Binder) Concurrent() bool {
	cs, ok := b.ip.(ConcurrentSafe)
	return ok && cs.ConcurrentInterposer()
}

// Enter is the stub's pre-syscall hcall payload.
func (b *Binder) Enter(hc *kernel.HcallCtx) error {
	t := hc.Task
	c, err := ReadCall(t)
	if err != nil {
		return fmt.Errorf("interpose: read call: %w", err)
	}
	action := b.ip.Enter(c)
	if err := WriteCall(t, c); err != nil {
		return fmt.Errorf("interpose: write call: %w", err)
	}
	if action == Emulate {
		if err := WriteSavedReg(t, isa.RAX, uint64(c.Ret)); err != nil {
			return err
		}
		if err := t.AS.WriteForce(t.CPU.GSBase+GSEmulate, []byte{1}); err != nil {
			return err
		}
	}
	// Syscalls that never return to the stub (the context is destroyed or
	// replaced) would leak a pending frame: don't push one.
	if action != Emulate && noReturnSyscall(c.Nr) {
		return nil
	}
	b.mu.Lock()
	b.pending[t.ID] = append(b.pending[t.ID], c)
	b.mu.Unlock()
	return nil
}

// noReturnSyscall reports whether a successful nr abandons the stub
// context before the Exit hcall can run.
func noReturnSyscall(nr int64) bool {
	switch nr {
	case kernel.SysExit, kernel.SysExitGroup, kernel.SysExecve, kernel.SysRtSigreturn:
		return true
	}
	return false
}

// Exit is the stub's post-syscall hcall payload.
func (b *Binder) Exit(hc *kernel.HcallCtx) error {
	t := hc.Task
	b.mu.Lock()
	stack := b.pending[t.ID]
	var c *Call
	if n := len(stack); n > 0 {
		c = stack[n-1]
		b.pending[t.ID] = stack[:n-1]
	}
	b.mu.Unlock()
	if c == nil {
		// No pending frame: the stub context was resumed without a
		// matching Enter (a clone child continuing past its parent's
		// fork). Nr -1 marks the call as synthetic.
		c = &Call{Task: t, Nr: -1}
	}
	ret, err := ReadSavedReg(t, isa.RAX)
	if err != nil {
		return err
	}
	c.Ret = int64(ret)
	b.ip.Exit(c)
	return WriteSavedReg(t, isa.RAX, uint64(c.Ret))
}
