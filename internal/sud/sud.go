// Package sud implements the "typical SUD deployment" the paper uses as
// its exhaustive-but-slower baseline (§II-A): Syscall User Dispatch with
// a SIGSYS handler that performs the interposition inside the signal
// handler, plus an allowlisted code-address range covering the handler's
// own syscall instructions and the kernel's vdso sigreturn stub, so the
// handler can invoke the real syscall and return without recursing.
//
// Every application syscall therefore costs a full signal delivery and
// sigreturn — the 20.8x of Table II — but interception is exhaustive:
// JIT-generated syscalls trap exactly like static ones. The allowlisted
// range is also the deployment's security weakness the paper highlights
// ("attackers could simply jump to any allowlisted syscall instruction"),
// which lazypoline's selector-only design eliminates.
package sud

import (
	"fmt"

	"lazypoline/internal/interpose"
	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
	"lazypoline/internal/mem"
	"lazypoline/internal/telemetry"
)

// HandlerBase is where the SIGSYS handler stub is mapped: directly after
// the vdso, so one contiguous allowlisted range [VdsoBase, VdsoBase+2p)
// covers both the handler's syscall and the sigreturn stub.
const HandlerBase = kernel.VdsoBase + mem.PageSize

// Mechanism is an attached SUD interposer.
type Mechanism struct {
	// Hits counts SIGSYS activations (one per application syscall).
	Hits int

	ip      interpose.Interposer
	k       *kernel.Kernel
	pending map[int][]*interpose.Call
}

// Attach installs the typical SUD deployment on a task.
func Attach(k *kernel.Kernel, t *kernel.Task, ip interpose.Interposer) (*Mechanism, error) {
	m := &Mechanism{ip: ip, k: k, pending: make(map[int][]*interpose.Call)}
	preID := k.RegisterHcall(m.enter)
	postID := k.RegisterHcall(m.exit)

	// Per-task selector byte lives in a gs region (shared layout).
	gsBase, err := t.AS.MapAnon(interpose.GSSize, mem.ProtRW)
	if err != nil {
		return nil, fmt.Errorf("sud: map gs region: %w", err)
	}
	t.CPU.GSBase = gsBase
	if err := interpose.InitGSRegion(t, gsBase); err != nil {
		return nil, err
	}

	// The SIGSYS handler stub. Registers are free to clobber: sigreturn
	// restores the full saved context, and the result is written into the
	// saved RAX by the post-payload.
	scr := int64(interpose.GSSudScratch)
	var e isa.Enc
	e.Hcall(preID) // read call from ucontext, ip.Enter, stage into gs scratch
	e.GsLoadB(isa.RBX, interpose.GSEmulate)
	e.CmpImm(isa.RBX, 1)
	jzAt := e.Len()
	e.Jz(0) // patched to skip
	e.GsLoad(isa.RAX, scr+0)
	e.GsLoad(isa.RDI, scr+8)
	e.GsLoad(isa.RSI, scr+16)
	e.GsLoad(isa.RDX, scr+24)
	e.GsLoad(isa.R10, scr+32)
	e.GsLoad(isa.R8, scr+40)
	e.GsLoad(isa.R9, scr+48)
	e.Syscall() // inside the allowlisted range: dispatches, may block
	e.GsStore(scr+0, isa.RAX)
	patchJz(&e, jzAt, e.Len())
	e.GsStoreBI(interpose.GSEmulate, 0)
	e.Hcall(postID) // ip.Exit, write result into the saved context
	e.Ret()         // into the vdso sigreturn stub (also allowlisted)

	if err := t.AS.MapFixed(HandlerBase, mem.PageSize, mem.ProtRW); err != nil {
		return nil, fmt.Errorf("sud: map handler page: %w", err)
	}
	if err := t.AS.WriteAt(HandlerBase, e.Buf); err != nil {
		return nil, err
	}
	if err := t.AS.Protect(HandlerBase, mem.PageSize, mem.ProtRX); err != nil {
		return nil, err
	}
	t.Sig.Set(kernel.SIGSYS, kernel.SigAction{Handler: HandlerBase})

	// SUD with the contiguous vdso+handler range allowlisted.
	if err := k.ConfigSUD(t, kernel.SUDConfig{
		Enabled:      true,
		SelectorAddr: gsBase + interpose.GSSelector,
		RangeLo:      kernel.VdsoBase,
		RangeLen:     2 * mem.PageSize,
	}); err != nil {
		return nil, err
	}
	if err := t.AS.WriteForce(gsBase+interpose.GSSelector,
		[]byte{kernel.SyscallDispatchFilterBlock}); err != nil {
		return nil, err
	}

	// The kernel clears SUD in clone/fork children; a real SUD library
	// re-enables it there (the handler page, gs region and selector all
	// exist in the child's copied address space at the same addresses).
	k.CloneHook = func(parent, child *kernel.Task) error {
		cfg := kernel.SUDConfig{
			Enabled:      true,
			SelectorAddr: child.CPU.GSBase + interpose.GSSelector,
			RangeLo:      kernel.VdsoBase,
			RangeLen:     2 * mem.PageSize,
		}
		if err := k.ConfigSUD(child, cfg); err != nil {
			// A child we cannot re-interpose must not run: report the
			// failure to the kernel, which kills the child with SIGSYS
			// and fails the parent's clone with -EAGAIN.
			return fmt.Errorf("sud: clone hook: %w", err)
		}
		return nil
	}

	if tel := k.Telemetry(); tel != nil && tel.Metrics != nil {
		tel.Metrics.AddCollector(func(r *telemetry.Registry) {
			r.Counter("sud.sigsys_hits").Set(uint64(m.Hits))
		})
	}
	return m, nil
}

// Symbols names the mechanism's injected code for profiler output.
func (m *Mechanism) Symbols() map[string]uint64 {
	return map[string]uint64{"sud_handler": HandlerBase}
}

func patchJz(e *isa.Enc, insnOff, target int) {
	rel := int32(target - (insnOff + 5))
	e.Buf[insnOff+1] = byte(rel)
	e.Buf[insnOff+2] = byte(rel >> 8)
	e.Buf[insnOff+3] = byte(rel >> 16)
	e.Buf[insnOff+4] = byte(rel >> 24)
}

// enter is the pre-syscall payload: pull the aborted syscall out of the
// saved ucontext, run the interposer, stage the (possibly modified)
// call — or the emulated result — for the stub.
func (m *Mechanism) enter(hc *kernel.HcallCtx) error {
	t := hc.Task
	ucAddr, sig, ok := t.CurrentSigFrame()
	if !ok || sig != kernel.SIGSYS {
		return fmt.Errorf("sud: handler outside SIGSYS")
	}
	m.Hits++

	c := &interpose.Call{Task: t}
	rax, err := t.AS.ReadU64(ucAddr + kernel.UCReg(int(isa.RAX)))
	if err != nil {
		return err
	}
	c.Nr = int64(rax)
	argRegs := [6]isa.Reg{isa.RDI, isa.RSI, isa.RDX, isa.R10, isa.R8, isa.R9}
	for i, r := range argRegs {
		v, err := t.AS.ReadU64(ucAddr + kernel.UCReg(int(r)))
		if err != nil {
			return err
		}
		c.Args[i] = v
	}

	action := m.ip.Enter(c)
	scr := t.CPU.GSBase + interpose.GSSudScratch
	if action == interpose.Emulate {
		if err := t.AS.WriteU64(scr, uint64(c.Ret)); err != nil {
			return err
		}
		if err := t.AS.WriteForce(t.CPU.GSBase+interpose.GSEmulate, []byte{1}); err != nil {
			return err
		}
	} else {
		vals := [7]uint64{uint64(c.Nr), c.Args[0], c.Args[1], c.Args[2], c.Args[3], c.Args[4], c.Args[5]}
		for i, v := range vals {
			if err := t.AS.WriteU64(scr+uint64(8*i), v); err != nil {
				return err
			}
		}
	}
	m.pending[t.ID] = append(m.pending[t.ID], c)
	return nil
}

// exit is the post-syscall payload: finish the interposition and write
// the result into the saved context so the application resumes as if the
// syscall had returned normally.
func (m *Mechanism) exit(hc *kernel.HcallCtx) error {
	t := hc.Task
	ucAddr, _, ok := t.CurrentSigFrame()
	if !ok {
		return fmt.Errorf("sud: exit outside signal frame")
	}
	stack := m.pending[t.ID]
	var c *interpose.Call
	if n := len(stack); n > 0 {
		c = stack[n-1]
		m.pending[t.ID] = stack[:n-1]
	} else {
		c = &interpose.Call{Task: t, Nr: -1}
	}
	ret, err := t.AS.ReadU64(t.CPU.GSBase + interpose.GSSudScratch)
	if err != nil {
		return err
	}
	c.Ret = int64(ret)
	m.ip.Exit(c)
	return t.AS.WriteU64(ucAddr+kernel.UCReg(int(isa.RAX)), uint64(c.Ret))
}
