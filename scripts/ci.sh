#!/bin/sh
# CI gate: vet, build, then the full test suite under the race detector.
# The -race run is what keeps the parallel experiment harness honest —
# every sweep cell must stay isolated in its own simulated machine.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
