// MVEE: a miniature multi-variant execution environment — one of the
// syscall-interposition use cases motivating the paper (security through
// diversified replicas; its references include GHUMVEE, Orchestra,
// MvArmor). Two variants of the same program run side by side, each under
// lazypoline; a monitor compares their syscall streams in lockstep and
// flags the first divergence.
//
// Exhaustiveness is what makes this sound: an attacker who can execute
// syscalls the monitor does not see (e.g. from JIT-sprayed code, which
// static rewriters miss) defeats the whole scheme. The demo's second
// round simulates a compromised variant issuing an extra syscall from
// runtime-generated code — lazypoline still sees it, so the monitor
// catches the divergence.
//
//	go run ./examples/mvee
package main

import (
	"fmt"
	"log"

	"lazypoline/internal/core"
	"lazypoline/internal/guest"
	"lazypoline/internal/kernel"
	"lazypoline/internal/trace"
)

// benignGuest is the common program: a few file operations.
const benignGuest = `
_start:
	mov64 rax, SYS_open
	lea rdi, path
	mov64 rsi, O_RDONLY
	mov64 rdx, 0
	syscall
	mov rbx, rax
	mov64 rax, SYS_read
	mov rdi, rbx
	mov64 rsi, DATA
	mov64 rdx, 32
	syscall
	mov64 rax, SYS_close
	mov rdi, rbx
	syscall
	mov64 rdi, 0
	mov64 rax, SYS_exit
	syscall
path:
	.ascii "/etc/motd"
	.byte 0
`

// compromisedGuest is the same program, but "exploited": before exiting
// it JITs a page that exfiltrates via an extra write syscall — code no
// static scan ever saw.
const compromisedGuest = `
_start:
	mov64 rax, SYS_open
	lea rdi, path
	mov64 rsi, O_RDONLY
	mov64 rdx, 0
	syscall
	mov rbx, rax
	mov64 rax, SYS_read
	mov rdi, rbx
	mov64 rsi, DATA
	mov64 rdx, 32
	syscall
	mov64 rax, SYS_close
	mov rdi, rbx
	syscall
	; ---- injected payload: JIT a "write(1, DATA, 8); ret" gadget ----
	mov64 rax, SYS_mmap
	mov64 rdi, 0
	mov64 rsi, 4096
	mov64 rdx, 7
	mov64 r10, 0x20
	syscall
	mov r12, rax
	mov64 rcx, 0x10001     ; mov64 rax, 1 (first 8 bytes, LE)
	store [r12], rcx
	mov64 rcx, 0x909090C3050F0000
	store [r12+8], rcx
	mov64 rdi, 1
	mov64 rsi, DATA
	mov64 rdx, 8
	call r12               ; exfiltrate
	; ---- payload end ----
	mov64 rdi, 0
	mov64 rax, SYS_exit
	syscall
path:
	.ascii "/etc/motd"
	.byte 0
`

// runVariant executes one variant to completion and returns its trace.
func runVariant(name, src string) ([]trace.Entry, error) {
	k := kernel.New(kernel.Config{})
	if err := k.FS.MkdirAll("/etc", 0o755); err != nil {
		return nil, err
	}
	if err := k.FS.WriteFile("/etc/motd", []byte("multi-variant demo file\n"), 0o644); err != nil {
		return nil, err
	}
	prog, err := guest.Build(name, guest.Header+src)
	if err != nil {
		return nil, err
	}
	task, err := prog.Spawn(k)
	if err != nil {
		return nil, err
	}
	rec := &trace.Recorder{}
	if _, err := core.Attach(k, task, rec, core.Options{}); err != nil {
		return nil, err
	}
	if err := k.Run(10_000_000); err != nil {
		return nil, err
	}
	return rec.Entries(), nil
}

// monitor compares two variants' syscall streams in lockstep.
func monitor(a, b []trace.Entry) (diverged bool, at int, what string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Nr != b[i].Nr {
			return true, i, fmt.Sprintf("%s vs %s", kernel.SyscallName(a[i].Nr), kernel.SyscallName(b[i].Nr))
		}
	}
	if len(a) != len(b) {
		longer := a
		if len(b) > len(a) {
			longer = b
		}
		return true, n, fmt.Sprintf("extra %s", kernel.SyscallName(longer[n].Nr))
	}
	return false, 0, ""
}

func main() {
	fmt.Println("round 1: two healthy variants")
	a, err := runVariant("variant-A", benignGuest)
	if err != nil {
		log.Fatal(err)
	}
	b, err := runVariant("variant-B", benignGuest)
	if err != nil {
		log.Fatal(err)
	}
	if diverged, at, what := monitor(a, b); diverged {
		fmt.Printf("  UNEXPECTED divergence at syscall %d: %s\n", at, what)
	} else {
		fmt.Printf("  lockstep OK: %d syscalls, identical streams\n", len(a))
	}

	fmt.Println("round 2: variant B compromised (JIT-injected exfiltration)")
	b2, err := runVariant("variant-B-pwned", compromisedGuest)
	if err != nil {
		log.Fatal(err)
	}
	if diverged, at, what := monitor(a, b2); diverged {
		fmt.Printf("  DIVERGENCE detected at syscall %d: %s — variant quarantined\n", at, what)
		fmt.Println("  (the extra syscalls came from runtime-generated code;")
		fmt.Println("   a static rewriter would never have shown them to the monitor)")
	} else {
		fmt.Println("  MISSED the attack — exhaustiveness broken!")
	}
}
