// Package isa defines the instruction set architecture of the simulated
// machine used throughout lazypoline-go.
//
// The ISA is a compact, byte-encoded, variable-length instruction set that
// deliberately preserves the x86-64 properties the lazypoline paper depends
// on:
//
//   - SYSCALL is the two-byte sequence 0F 05 and SYSENTER is 0F 34, exactly
//     as on x86-64.
//   - CALL RAX is the two-byte sequence FF D0, exactly as on x86-64, so a
//     syscall instruction can be rewritten in place without moving any
//     surrounding code.
//   - NOP is the single byte 90, so a nop sled can be built byte-by-byte.
//   - Instructions have variable length and immediates may contain arbitrary
//     bytes — including 0F 05 — which reproduces the classic static
//     disassembly hazard (a "syscall" appearing inside another instruction's
//     immediate or inside data).
//
// Everything else about the encoding is our own, kept simple enough to
// decode in a few lines while being rich enough to write real guest
// programs (loops, calls, memory, atomics, SSE-like vector registers, x87-
// like stack registers, and %gs-relative addressing for per-task state).
package isa

import "fmt"

// Reg identifies a general purpose register. The numbering follows the
// x86-64 convention so that the syscall ABI (nr in RAX, args in RDI, RSI,
// RDX, R10, R8, R9; RCX and R11 clobbered) reads naturally.
type Reg uint8

// General purpose registers.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NumRegs is the number of general purpose registers.
	NumRegs = 16
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String returns the conventional lower-case register name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg%d", uint8(r))
}

// RegByName maps a register name ("rax", "r10", ...) to its Reg value.
// The boolean reports whether the name is known.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// XReg identifies one of the 16 vector (xmm-like) registers. Each holds 16
// bytes of extended state that the kernel does NOT preserve across a
// syscall unless an interposer explicitly saves and restores it — the crux
// of the paper's ABI-compatibility analysis (Listing 1, Table III).
type XReg uint8

// NumXRegs is the number of vector registers.
const NumXRegs = 16

// String returns the conventional xmm register name.
func (x XReg) String() string { return fmt.Sprintf("xmm%d", uint8(x)) }

// Op is an opcode. Values below 0x80 are single-byte opcodes; the special
// x86-compatible encodings (0F 05, 0F 34, FF D0, 90, C3, CC, F4) are
// handled explicitly by the decoder.
type Op uint8

// Opcode space. The x86-faithful encodings come first.
const (
	// OpNop is the 1-byte nop (0x90), used verbatim for the zpoline nop sled.
	OpNop Op = 0x90
	// OpRet (0xC3) pops a return address and jumps to it.
	OpRet Op = 0xC3
	// OpTrap (0xCC, int3) raises a trap to the kernel (SIGTRAP).
	OpTrap Op = 0xCC
	// OpHlt (0xF4) halts the task; used to end guest programs that do not
	// call exit. Executing it raises an exit event with status 0.
	OpHlt Op = 0xF4
	// OpPrefix0F (0x0F) introduces SYSCALL (0F 05) and SYSENTER (0F 34).
	OpPrefix0F Op = 0x0F
	// OpPrefixFF (0xFF) introduces CALL/JMP-indirect-through-register:
	// FF D0+r = call reg, FF E0+r = jmp reg (r in 0..15 via low nibble of
	// the following byte; FF D0 is "call rax" exactly as on x86-64).
	OpPrefixFF Op = 0xFF

	// OpMovImm64 loads a 64-bit immediate: [op][reg][imm64] (10 bytes).
	OpMovImm64 Op = 0x01
	// OpMovReg copies a register: [op][dst<<4|src] (2 bytes).
	OpMovReg Op = 0x02
	// OpLoad loads 8 bytes from [src+disp32]: [op][dst<<4|src][disp32] (6).
	OpLoad Op = 0x03
	// OpStore stores 8 bytes to [dst+disp32]: [op][dst<<4|src][disp32] (6).
	OpStore Op = 0x04
	// OpAdd adds src to dst: [op][dst<<4|src] (2).
	OpAdd Op = 0x05
	// OpSub subtracts src from dst and sets flags: [op][dst<<4|src] (2).
	OpSub Op = 0x06
	// OpAddImm adds a signed 32-bit immediate: [op][reg][imm32] (6).
	OpAddImm Op = 0x07
	// OpCmp compares two registers and sets flags: [op][a<<4|b] (2).
	OpCmp Op = 0x08
	// OpCmpImm compares a register with an imm32: [op][reg][imm32] (6).
	OpCmpImm Op = 0x09
	// OpJmp jumps relative: [op][rel32] (5); target = next insn + rel32.
	OpJmp Op = 0x0A
	// OpJz jumps if the zero flag is set: [op][rel32] (5).
	OpJz Op = 0x0B
	// OpJnz jumps if the zero flag is clear: [op][rel32] (5).
	OpJnz Op = 0x0C
	// OpCall pushes the return address and jumps: [op][rel32] (5).
	OpCall Op = 0x0D
	// OpPush pushes a register: [op][reg] (2).
	OpPush Op = 0x0E
	// OpPop pops into a register: [op][reg] (2).
	OpPop Op = 0x10
	// OpMovImm32 loads a zero-extended 32-bit immediate: [op][reg][imm32] (6).
	OpMovImm32 Op = 0x11
	// OpMul multiplies dst by src: [op][dst<<4|src] (2).
	OpMul Op = 0x12
	// OpAnd, OpOr, OpXor are bitwise ops: [op][dst<<4|src] (2).
	OpAnd Op = 0x13
	OpOr  Op = 0x14
	OpXor Op = 0x15
	// OpShlImm and OpShrImm shift by an immediate: [op][reg][imm8] (3).
	OpShlImm Op = 0x16
	OpShrImm Op = 0x17
	// OpJl/OpJg/OpJle/OpJge are signed conditional jumps: [op][rel32] (5).
	OpJl  Op = 0x18
	OpJg  Op = 0x19
	OpJle Op = 0x1A
	OpJge Op = 0x1B
	// OpLea computes a RIP-relative address: [op][reg][disp32] (6);
	// reg = address of next instruction + disp32.
	OpLea Op = 0x1C
	// OpLoadB loads one byte zero-extended: [op][dst<<4|src][disp32] (6).
	OpLoadB Op = 0x1D
	// OpStoreB stores the low byte of src: [op][dst<<4|src][disp32] (6).
	OpStoreB Op = 0x1E
	// OpLoad32 loads 4 bytes zero-extended: [op][dst<<4|src][disp32] (6).
	OpLoad32 Op = 0x1F

	// OpMovQ2X moves a GPR into the low 8 bytes of an xmm register,
	// zeroing the high half: [op][xmm<<4|reg] (2).
	OpMovQ2X Op = 0x20
	// OpMovX2Q moves the low 8 bytes of an xmm register into a GPR:
	// [op][reg<<4|xmm] (2).
	OpMovX2Q Op = 0x21
	// OpPunpck duplicates the low 8 bytes of an xmm into its high 8 bytes
	// (the punpcklqdq xmm,xmm idiom from Listing 1): [op][xmm] (2).
	OpPunpck Op = 0x22
	// OpMovupsStore stores 16 bytes of an xmm: [op][xmm<<4|reg][disp32] (6).
	OpMovupsStore Op = 0x23
	// OpMovupsLoad loads 16 bytes into an xmm: [op][xmm<<4|reg][disp32] (6).
	OpMovupsLoad Op = 0x24
	// OpXorps zeroes/xors an xmm with another: [op][dst<<4|src] (2).
	OpXorps Op = 0x25
	// OpFld pushes a GPR value onto the x87-like register stack: [op][reg] (2).
	OpFld Op = 0x26
	// OpFst pops the x87-like stack top into a GPR: [op][reg] (2).
	OpFst Op = 0x27

	// OpRdCycle reads the current cycle counter into a register (rdtsc-
	// like): [op][reg] (2).
	OpRdCycle Op = 0x30
	// OpGsLoad loads 8 bytes from gs:[disp32]: [op][reg][disp32] (6).
	OpGsLoad Op = 0x31
	// OpGsStore stores 8 bytes to gs:[disp32]: [op][reg][disp32] (6).
	OpGsStore Op = 0x32
	// OpGsLoadB loads 1 byte zero-extended from gs:[disp32]: [op][reg][disp32] (6).
	OpGsLoadB Op = 0x33
	// OpGsStoreB stores the low byte of reg to gs:[disp32]: [op][reg][disp32] (6).
	OpGsStoreB Op = 0x34
	// OpGsStoreBI stores an immediate byte to gs:[disp32]: [op][imm8][disp32] (6).
	// Register-free so interposer stubs can flip the SUD selector without
	// clobbering application state.
	OpGsStoreBI Op = 0x35
	// OpGsPush pushes the 8-byte value at gs:[disp32] without touching any
	// GPR: [op][disp32] (5). Used by the sigreturn trampoline, which must
	// not clobber application registers.
	OpGsPush Op = 0x36
	// OpGsAddI adds a signed imm32 to the 8-byte value at gs:[disp32]
	// without touching any GPR: [op][disp32][imm32] (9).
	OpGsAddI Op = 0x37
	// OpGsMovB copies one byte gs:[dstdisp32] = gs:[srcdisp32] without
	// touching any GPR: [op][dst disp32][src disp32] (9).
	OpGsMovB Op = 0x38
	// OpGsMov copies 8 bytes gs:[dstdisp32] = gs:[srcdisp32] without
	// touching any GPR: [op][dst disp32][src disp32] (9).
	OpGsMov Op = 0x39
	// OpGsLoadIdxB loads 1 byte from gs:[base reg] (register-indexed, no
	// displacement): [op][dst<<4|idx] (2).
	OpGsLoadIdxB Op = 0x3A
	// OpGsLoadIdx loads 8 bytes from gs:[idx reg + disp32]:
	// [op][dst<<4|idx][disp32] (6). Unlike Load, it does not touch flags
	// (none of the gs ops do), which the sigreturn trampoline depends on.
	OpGsLoadIdx Op = 0x3D

	// OpXchg atomically exchanges [mem]+0 with a register: [op][mem<<4|val]
	// (2 bytes). val gets the old memory value. Used for spinlocks.
	OpXchg Op = 0x3B
	// OpPause is a spin-wait hint (1 byte).
	OpPause Op = 0x3C

	// OpXsave saves the full extended state (all xmm + x87) to the
	// absolute address held in a register: [op][reg] (2). Models the x86
	// XSAVE instruction; the register operand (rather than a fixed
	// displacement) is what lets lazypoline manage its per-task xstate
	// save area as a stack for nested interposer invocations.
	OpXsave Op = 0x40
	// OpXrstor restores the full extended state from [reg]: [op][reg] (2).
	OpXrstor Op = 0x41

	// OpWrpkru writes the PKRU register from a GPR's low 32 bits:
	// [op][reg] (2). Models the x86 WRPKRU instruction that MPK-based
	// intra-process isolation (ERIM, Jenny, ...) toggles domains with.
	OpWrpkru Op = 0x43
	// OpRdpkru reads PKRU into a GPR: [op][reg] (2).
	OpRdpkru Op = 0x44

	// OpHcall invokes a registered host-callback (the "interposer body"):
	// [op][imm32 handler id] (5). This is the boundary at which mechanism
	// stubs hand over to user-supplied Go interposer functions. The cost
	// model charges a fixed body cost for it.
	OpHcall Op = 0x42

	// OpJmpInd jumps to the address held in a register: handled via the FF
	// prefix (FF E0+r) like x86; no standalone opcode value.
)

// Kind classifies how an instruction's operands are encoded, which
// determines its length.
type Kind uint8

// Operand encoding kinds.
const (
	KindNone      Kind = iota + 1 // [op]                       1 byte
	KindReg                       // [op][reg]                  2 bytes
	KindRegReg                    // [op][a<<4|b]               2 bytes
	KindRegImm64                  // [op][reg][imm64]           10 bytes
	KindRegImm32                  // [op][reg][imm32]           6 bytes
	KindRegImm8                   // [op][reg][imm8]            3 bytes
	KindRegRegD32                 // [op][a<<4|b][disp32]       6 bytes
	KindRel32                     // [op][rel32]                5 bytes
	KindImm8D32                   // [op][imm8][disp32]         6 bytes
	KindD32                       // [op][disp32]               5 bytes
	KindD32Imm32                  // [op][disp32][imm32]        9 bytes
	KindD32D32                    // [op][disp32][disp32]       9 bytes
	KindImm32                     // [op][imm32]                5 bytes
	KindPrefix0F                  // 0F 05 / 0F 34              2 bytes
	KindPrefixFF                  // FF D0+r / FF E0+r          2 bytes
)

// opInfo describes one opcode's mnemonic and encoding kind.
type opInfo struct {
	name string
	kind Kind
}

var opTable = map[Op]opInfo{
	OpNop:         {"nop", KindNone},
	OpRet:         {"ret", KindNone},
	OpTrap:        {"int3", KindNone},
	OpHlt:         {"hlt", KindNone},
	OpPause:       {"pause", KindNone},
	OpMovImm64:    {"mov64", KindRegImm64},
	OpMovImm32:    {"mov32", KindRegImm32},
	OpMovReg:      {"mov", KindRegReg},
	OpLoad:        {"load", KindRegRegD32},
	OpStore:       {"store", KindRegRegD32},
	OpLoadB:       {"loadb", KindRegRegD32},
	OpStoreB:      {"storeb", KindRegRegD32},
	OpLoad32:      {"load32", KindRegRegD32},
	OpAdd:         {"add", KindRegReg},
	OpSub:         {"sub", KindRegReg},
	OpMul:         {"mul", KindRegReg},
	OpAnd:         {"and", KindRegReg},
	OpOr:          {"or", KindRegReg},
	OpXor:         {"xor", KindRegReg},
	OpAddImm:      {"addi", KindRegImm32},
	OpCmp:         {"cmp", KindRegReg},
	OpCmpImm:      {"cmpi", KindRegImm32},
	OpShlImm:      {"shli", KindRegImm8},
	OpShrImm:      {"shri", KindRegImm8},
	OpJmp:         {"jmp", KindRel32},
	OpJz:          {"jz", KindRel32},
	OpJnz:         {"jnz", KindRel32},
	OpJl:          {"jl", KindRel32},
	OpJg:          {"jg", KindRel32},
	OpJle:         {"jle", KindRel32},
	OpJge:         {"jge", KindRel32},
	OpCall:        {"call", KindRel32},
	OpPush:        {"push", KindReg},
	OpPop:         {"pop", KindReg},
	OpLea:         {"lea", KindRegImm32},
	OpMovQ2X:      {"movq2x", KindRegReg},
	OpMovX2Q:      {"movx2q", KindRegReg},
	OpPunpck:      {"punpck", KindReg},
	OpMovupsStore: {"movups_st", KindRegRegD32},
	OpMovupsLoad:  {"movups_ld", KindRegRegD32},
	OpXorps:       {"xorps", KindRegReg},
	OpFld:         {"fld", KindReg},
	OpFst:         {"fst", KindReg},
	OpRdCycle:     {"rdcycle", KindReg},
	OpGsLoad:      {"gsload", KindRegImm32},
	OpGsStore:     {"gsstore", KindRegImm32},
	OpGsLoadB:     {"gsloadb", KindRegImm32},
	OpGsStoreB:    {"gsstoreb", KindRegImm32},
	OpGsStoreBI:   {"gsstorebi", KindImm8D32},
	OpGsPush:      {"gspush", KindD32},
	OpGsAddI:      {"gsaddi", KindD32Imm32},
	OpGsMovB:      {"gsmovb", KindD32D32},
	OpGsMov:       {"gsmov", KindD32D32},
	OpGsLoadIdxB:  {"gsloadidxb", KindRegReg},
	OpGsLoadIdx:   {"gsloadidx", KindRegRegD32},
	OpXchg:        {"xchg", KindRegReg},
	OpXsave:       {"xsave", KindReg},
	OpXrstor:      {"xrstor", KindReg},
	OpWrpkru:      {"wrpkru", KindReg},
	OpRdpkru:      {"rdpkru", KindReg},
	OpHcall:       {"hcall", KindImm32},
}

// Info returns the mnemonic and encoding kind for an opcode. ok is false
// for unknown opcodes and for the 0F/FF prefix bytes (which are not
// standalone opcodes).
func Info(op Op) (name string, kind Kind, ok bool) {
	in, ok := opTable[op]
	if !ok {
		return "", 0, false
	}
	return in.name, in.kind, true
}

// Sizes of the x86-faithful special encodings.
const (
	// SyscallLen is the length in bytes of the SYSCALL (0F 05) and
	// SYSENTER (0F 34) instructions — and, critically, of CALL RAX
	// (FF D0), which is what makes in-place rewriting possible.
	SyscallLen = 2
)

// Bytes of the x86-faithful special encodings.
const (
	Byte0F      = 0x0F
	ByteSyscall = 0x05 // 0F 05
	ByteSysent  = 0x34 // 0F 34
	ByteFF      = 0xFF
	ByteCallReg = 0xD0 // FF D0+r, call reg
	ByteJmpReg  = 0xE0 // FF E0+r, jmp reg
)

// SyscallBytes returns the 2-byte encoding of the SYSCALL instruction.
func SyscallBytes() [2]byte { return [2]byte{Byte0F, ByteSyscall} }

// SysenterBytes returns the 2-byte encoding of the SYSENTER instruction.
func SysenterBytes() [2]byte { return [2]byte{Byte0F, ByteSysent} }

// CallRaxBytes returns the 2-byte encoding of CALL RAX, the replacement
// zpoline and lazypoline write over a syscall instruction.
func CallRaxBytes() [2]byte { return [2]byte{ByteFF, ByteCallReg} }
