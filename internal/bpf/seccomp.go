package bpf

import "encoding/binary"

// Seccomp filter return actions (high 16 bits of the filter result), in
// decreasing order of precedence, matching the Linux uapi.
const (
	RetKillProcess = 0x80000000
	RetKillThread  = 0x00000000
	RetTrap        = 0x00030000
	RetErrno       = 0x00050000
	RetUserNotif   = 0x7fc00000
	RetTrace       = 0x7ff00000
	RetLog         = 0x7ffc0000
	RetAllow       = 0x7fff0000

	// RetActionMask extracts the action from a filter result.
	RetActionMask = 0xffff0000
	// RetDataMask extracts the 16-bit data (e.g. the errno).
	RetDataMask = 0x0000ffff
)

// AuditArch identifies our simulated architecture in seccomp_data.
const AuditArch = 0xc000003e // AUDIT_ARCH_X86_64

// SeccompData is the fixed input snapshot a seccomp filter sees. Note
// what is absent: no memory, no pointers — only raw argument words. This
// is the expressiveness limit of Table I.
type SeccompData struct {
	Nr                 int32
	Arch               uint32
	InstructionPointer uint64
	Args               [6]uint64
}

// SeccompDataSize is the marshaled size of SeccompData.
const SeccompDataSize = 64

// Marshal serializes the snapshot in the kernel's layout.
func (d *SeccompData) Marshal() []byte {
	b := make([]byte, SeccompDataSize)
	binary.LittleEndian.PutUint32(b[0:], uint32(d.Nr))
	binary.LittleEndian.PutUint32(b[4:], d.Arch)
	binary.LittleEndian.PutUint64(b[8:], d.InstructionPointer)
	for i, a := range d.Args {
		binary.LittleEndian.PutUint64(b[16+8*i:], a)
	}
	return b
}

// Offsets into the marshaled SeccompData.
const (
	OffNr     = 0
	OffArch   = 4
	OffIPLow  = 8
	OffIPHigh = 12
	OffArgs   = 16
)

// ArgLowOff returns the offset of the low 32 bits of argument i.
func ArgLowOff(i int) uint32 { return uint32(OffArgs + 8*i) }

// LoadNr emits "A = data.nr".
func LoadNr() Instruction { return Stmt(ClassLd|SizeW|ModeAbs, OffNr) }

// LoadArch emits "A = data.arch".
func LoadArch() Instruction { return Stmt(ClassLd|SizeW|ModeAbs, OffArch) }

// LoadIPLow emits "A = low32(data.instruction_pointer)".
func LoadIPLow() Instruction { return Stmt(ClassLd|SizeW|ModeAbs, OffIPLow) }

// LoadArgLow emits "A = low32(data.args[i])".
func LoadArgLow(i int) Instruction { return Stmt(ClassLd|SizeW|ModeAbs, ArgLowOff(i)) }

// Ret emits "return k".
func Ret(k uint32) Instruction { return Stmt(ClassRet|RetK, k) }

// JeqK emits "if A == k goto +jt else goto +jf".
func JeqK(k uint32, jt, jf uint8) Instruction { return Jump(ClassJmp|JmpJeq|SrcK, k, jt, jf) }

// JgeK emits "if A >= k goto +jt else goto +jf".
func JgeK(k uint32, jt, jf uint8) Instruction { return Jump(ClassJmp|JmpJge|SrcK, k, jt, jf) }

// AllowList builds an arch-checked filter that returns defaultAction
// unless the syscall number is in allowed (which returns RET_ALLOW).
func AllowList(allowed []int32, defaultAction uint32) (*Program, error) {
	insns := []Instruction{
		LoadArch(),
		JeqK(AuditArch, 1, 0),
		Ret(RetKillProcess),
		LoadNr(),
	}
	for _, nr := range allowed {
		insns = append(insns, JeqK(uint32(nr), 0, 1), Ret(RetAllow))
	}
	insns = append(insns, Ret(defaultAction))
	return New(insns)
}

// TrapAll builds a filter that traps every syscall except those invoked
// from the code address range [lo, lo+len) — the classic "allowlisted
// rewriter/interposer region" deployment used by seccomp-based user-space
// interposition (and criticized by the paper for its attack surface).
// A zero-length range traps everything.
func TrapAll(rangeLo uint64, rangeLen uint64, action uint32) (*Program, error) {
	if rangeLen == 0 {
		return New([]Instruction{Ret(action)})
	}
	lo := uint32(rangeLo)
	hi := uint32(rangeLo + rangeLen)
	// Compare only the low 32 bits of the IP: our guests live below 4 GiB,
	// as the validation in kernel.ConfigSUD also assumes.
	insns := []Instruction{
		LoadIPLow(),
		JgeK(lo, 0, 2), // ip >= lo ? check hi : trap
		JgeK(hi, 1, 0), // ip >= hi ? trap : allow
		Ret(RetAllow),
		Ret(action),
	}
	return New(insns)
}

// ErrnoFor builds a filter returning RET_ERRNO|errno for syscalls in
// denied and RET_ALLOW otherwise.
func ErrnoFor(denied []int32, errno uint16) (*Program, error) {
	insns := []Instruction{LoadNr()}
	for _, nr := range denied {
		insns = append(insns, JeqK(uint32(nr), 0, 1), Ret(RetErrno|uint32(errno)))
	}
	insns = append(insns, Ret(RetAllow))
	return New(insns)
}
