package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	// Bucket index is bits.Len64(v): 0→0, 1→1, 2,3→2, 4..7→3, 2^k→k+1.
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 10, 11}, {(1 << 11) - 1, 11}, {1 << 62, 63}, {math.MaxUint64, 64},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	for _, c := range cases {
		if h.buckets[c.bucket].Load() == 0 {
			t.Errorf("Observe(%d): bucket %d empty", c.v, c.bucket)
		}
	}
	if got := h.count.Load(); got != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", got, len(cases))
	}

	// BucketRange invariants: contiguous, covering, and containing the
	// values that map to them.
	for i := 0; i < histBuckets; i++ {
		lo, hi := BucketRange(i)
		if lo > hi {
			t.Errorf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if i > 0 {
			prevLo, prevHi := BucketRange(i - 1)
			_ = prevLo
			if lo != prevHi+1 {
				t.Errorf("bucket %d not contiguous: lo %d after hi %d", i, lo, prevHi)
			}
		}
	}
	if lo, _ := BucketRange(0); lo != 0 {
		t.Error("bucket 0 must start at 0")
	}
	if _, hi := BucketRange(histBuckets - 1); hi != math.MaxUint64 {
		t.Errorf("last bucket hi = %d", hi)
	}
}

func TestHistogramMinMaxSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{7, 3, 12} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	if hs.Count != 3 || hs.Sum != 22 || hs.Min != 3 || hs.Max != 12 {
		t.Errorf("snapshot: %+v", hs)
	}
	// Empty histogram: min must not leak the ^0 sentinel.
	r.Histogram("empty")
	hs = r.Snapshot().Histograms["empty"]
	if hs.Min != 0 || hs.Count != 0 {
		t.Errorf("empty histogram: %+v", hs)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	// Exercised under -race in CI: concurrent get-or-create plus updates
	// on the same names must be safe and lose no increments.
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").SetMax(int64(w*perWorker + i))
				r.Histogram("h").Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", snap.Counters["c"], workers*perWorker)
	}
	if snap.Gauges["g"] != workers*perWorker-1 {
		t.Errorf("gauge high-water = %d", snap.Gauges["g"])
	}
	if snap.Histograms["h"].Count != workers*perWorker {
		t.Errorf("histogram count = %d", snap.Histograms["h"].Count)
	}
}

func TestCollectorsRunAtSnapshot(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.AddCollector(func(r *Registry) {
		calls++
		r.Counter("published").Set(uint64(10 * calls))
	})
	if got := r.Snapshot().Counters["published"]; got != 10 {
		t.Errorf("first snapshot: %d", got)
	}
	// Set (not Add) semantics: the second snapshot republishes, no drift.
	if got := r.Snapshot().Counters["published"]; got != 20 {
		t.Errorf("second snapshot: %d", got)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("g").Set(-5)
		r.Histogram("h").Observe(9)
		out, err := r.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, two := build(), build()
	if string(one) != string(two) {
		t.Error("snapshot JSON not deterministic")
	}
	var decoded Snapshot
	if err := json.Unmarshal(one, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if decoded.Counters["a"] != 1 || decoded.Counters["b"] != 2 || decoded.Gauges["g"] != -5 {
		t.Errorf("decoded: %+v", decoded)
	}
	names := decoded.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("CounterNames = %v", names)
	}
}
