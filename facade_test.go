package lazypoline_test

import (
	"testing"

	"lazypoline"
)

// TestFacadeWorkflow exercises the public API end to end.
func TestFacadeWorkflow(t *testing.T) {
	k := lazypoline.NewKernel()
	prog, err := lazypoline.BuildGuest("facade", lazypoline.GuestHeader+`
	_start:
		mov64 rax, SYS_getpid
		syscall
		mov rdi, rax
		mov64 rax, SYS_exit
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		t.Fatal(err)
	}
	rec := lazypoline.NewRecorder()
	rt, err := lazypoline.Attach(k, task, rec, lazypoline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(-1); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != task.Tgid {
		t.Errorf("exit = %d, want pid", task.ExitCode)
	}
	if len(rec.Entries()) != 2 {
		t.Errorf("trace: %v", rec.Entries())
	}
	if rt.Stats.Rewrites != 2 {
		t.Errorf("rewrites = %d", rt.Stats.Rewrites)
	}
	if lazypoline.SyscallName(39) != "getpid" {
		t.Error("SyscallName broken")
	}
}

// TestFacadeEmulation checks the re-exported interposer verdicts.
func TestFacadeEmulation(t *testing.T) {
	k := lazypoline.NewKernel()
	prog, err := lazypoline.BuildGuest("facade", lazypoline.GuestHeader+`
	_start:
		mov64 rax, SYS_getpid
		syscall
		mov rdi, rax
		mov64 rax, SYS_exit
		syscall
	`)
	if err != nil {
		t.Fatal(err)
	}
	task, err := prog.Spawn(k)
	if err != nil {
		t.Fatal(err)
	}
	ip := lazypoline.FuncInterposer{
		OnEnter: func(c *lazypoline.Call) lazypoline.Action {
			if lazypoline.SyscallName(c.Nr) == "getpid" {
				c.Ret = 4242
				return lazypoline.Emulate
			}
			return lazypoline.Continue
		},
	}
	if _, err := lazypoline.Attach(k, task, ip, lazypoline.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(-1); err != nil {
		t.Fatal(err)
	}
	if task.ExitCode != 4242 {
		t.Errorf("exit = %d", task.ExitCode)
	}
}
