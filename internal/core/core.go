// Package core implements lazypoline — the paper's contribution: a
// hybrid syscall interposition mechanism that is simultaneously
// exhaustive, expressive and efficient.
//
// Slow path (§IV-A): Syscall User Dispatch in its "selector-only"
// deployment — no allowlisted code range at all. Every syscall executed
// with the per-task selector at BLOCK raises SIGSYS. The SIGSYS payload
// (1) rewrites the trapping 2-byte SYSCALL into CALL RAX under a
// spinlock-guarded mprotect RW→patch→RX sequence, and (2) interposes
// this first execution by redirecting the saved context (REG_RIP) into
// the generic fast-path entry point, after pushing the return address a
// genuine `call rax` would have pushed. It sigreturns with the selector
// still at ALLOW, which the entry stub resets to BLOCK on its way out —
// so no code address is ever exempt from interception.
//
// Fast path (§IV-B): the zpoline trampoline — a nop sled at virtual
// address 0 sliding into the shared entry stub, reached by the rewritten
// `call rax`. The stub optionally xsaves/xrstors all extended state to a
// per-task %gs-relative stack (ABI compatibility, Table III), runs the
// interposer payload, executes the real (possibly modified) syscall
// under selector=ALLOW, and restores.
//
// Signals (§IV-B(c), Figure 3): application sigaction calls are
// intercepted; a wrapper handler is registered instead, which pushes the
// current selector onto a %gs-relative sigreturn stack and sets BLOCK
// before calling the real handler. The handler's rt_sigreturn is itself
// interposed: lazypoline redirects the to-be-restored context through a
// register- and flags-preserving sigreturn trampoline that pops the
// selector stack before resuming the interrupted code.
package core

import (
	"fmt"

	"lazypoline/internal/interpose"
	"lazypoline/internal/isa"
	"lazypoline/internal/kernel"
	"lazypoline/internal/mem"
	"lazypoline/internal/telemetry"
	"lazypoline/internal/zpoline"
)

// Fixed guest-memory layout of the lazypoline runtime. Everything is per
// address space; fork copies it, execve re-injects it.
const (
	// RuntimeBase is the RX page holding the SIGSYS stub, the signal
	// wrapper and the sigreturn trampoline.
	RuntimeBase = 0xE000_0000
	// RuntimeDataBase is the RW page holding the app-handler table, the
	// rewrite spinlock and scratch space.
	RuntimeDataBase = 0xE001_0000

	// handlerTableOff is the offset of the 32-entry app handler table in
	// the data page.
	handlerTableOff = 0
	// spinlockOff is the rewrite spinlock word.
	spinlockOff = 0x100
	// scratchOff is scratch space for staged syscall arguments.
	scratchOff = 0x140
)

// Options configures Attach.
type Options struct {
	// SaveXState preserves all SSE/AVX/x87 state across interposition
	// (the default, as in the paper; turning it off reproduces the
	// "lazypoline without xstate preservation" configuration).
	SaveXState bool
	// NoXStateDefault inverts the SaveXState zero value: Options{} means
	// SaveXState=true. Set NoXStateDefault to honour SaveXState=false.
	NoXStateDefault bool
	// PreRewrite statically rewrites all currently mapped code up front,
	// so no slow-path activations occur for preexisting sites. The
	// paper's microbenchmark uses this to measure pure steady state
	// ("we manually rewrote the syscall instruction up front").
	PreRewrite bool
	// ProtectSelector enables the §VI security extension: the per-task
	// gs region (selector byte included) is tagged with an MPK protection
	// key, application code runs with writes to it disabled, and the
	// runtime stubs open/close the key with WRPKRU around their own gs
	// accesses. An application (or attacker) store to the selector then
	// faults instead of silently disabling interposition. Remaining
	// attack surface (WRPKRU gadgets in application code) requires
	// ERIM-style binary scanning, which is out of scope here, as in the
	// paper.
	ProtectSelector bool
}

func (o Options) saveXState() bool {
	if o.NoXStateDefault {
		return o.SaveXState
	}
	return true
}

// Stats counts runtime activity.
type Stats struct {
	// SlowPathHits is the number of SIGSYS slow-path activations.
	SlowPathHits int
	// Rewrites is the number of syscall sites rewritten to call rax.
	Rewrites int
	// Sites are the rewritten addresses.
	Sites []uint64
	// WrappedSignals counts application sigaction registrations wrapped.
	WrappedSignals int
	// SigreturnsRouted counts rt_sigreturns routed via the trampoline.
	SigreturnsRouted int
}

// Runtime is an attached lazypoline instance.
type Runtime struct {
	K      *kernel.Kernel
	Binder *interpose.Binder
	Opts   Options
	Stats  Stats

	userIP interpose.Interposer

	entryAddr   uint64 // fast-path entry (in the VA-0 trampoline page)
	sigsysAddr  uint64 // SIGSYS slow-path stub
	wrapperAddr uint64 // signal wrapper
	sigretTramp uint64 // sigreturn trampoline

	enterID, exitID, slowID int64
}

// Attach installs lazypoline for a task and hooks clone/execve so that
// children and fresh images stay interposed.
func Attach(k *kernel.Kernel, t *kernel.Task, ip interpose.Interposer, opts Options) (*Runtime, error) {
	rt := &Runtime{K: k, Opts: opts, userIP: ip}
	rt.Binder = interpose.NewBinder(&coreInterposer{rt: rt, user: ip})
	// The fast-path payloads run on shard goroutines when the user
	// interposer vouches for itself (DESIGN.md §15); the slow path
	// always serialises — it mutates rt.Stats and the rewrite-site list
	// and emits timeline spans, and it only runs once per syscall site.
	reg := k.RegisterHcall
	if rt.Binder.Concurrent() {
		reg = k.RegisterHcallConcurrent
	}
	rt.enterID = reg(rt.binderEnter)
	rt.exitID = reg(rt.Binder.Exit)
	rt.slowID = k.RegisterHcall(rt.slowPath)

	if err := rt.injectImage(t); err != nil {
		return nil, err
	}
	if err := rt.initTask(t, true); err != nil {
		return nil, err
	}
	if opts.PreRewrite {
		if err := rt.rewriteAllStatic(t); err != nil {
			return nil, err
		}
	}

	// A task we cannot interpose must never run uninstrumented. The
	// hooks report failure to the kernel, which turns it into a
	// guest-visible fault: SIGSYS for the uninterposable task, -EAGAIN
	// for a failed clone's parent — a guest-local problem stays guest
	// local instead of panicking the whole simulation.
	k.CloneHook = func(parent, child *kernel.Task) error {
		if err := rt.onClone(parent, child); err != nil {
			return fmt.Errorf("lazypoline: clone hook: %w", err)
		}
		return nil
	}
	k.ExecveHook = func(t *kernel.Task) error {
		if err := rt.onExecve(t); err != nil {
			return fmt.Errorf("lazypoline: execve hook: %w", err)
		}
		return nil
	}
	if tel := k.Telemetry(); tel != nil && tel.Metrics != nil {
		tel.Metrics.AddCollector(func(r *telemetry.Registry) {
			r.Counter("lazypoline.slowpath_hits").Set(uint64(rt.Stats.SlowPathHits))
			r.Counter("lazypoline.rewrites").Set(uint64(rt.Stats.Rewrites))
			r.Counter("lazypoline.wrapped_signals").Set(uint64(rt.Stats.WrappedSignals))
			r.Counter("lazypoline.sigreturns_routed").Set(uint64(rt.Stats.SigreturnsRouted))
		})
	}
	return rt, nil
}

// Symbols names the runtime's injected entry points, for the profiler's
// folded-stack output ("N% of cycles in sigsys_entry").
func (rt *Runtime) Symbols() map[string]uint64 {
	return map[string]uint64{
		"trampoline_sled":      0,
		"lazypoline_entry":     rt.entryAddr,
		"sigsys_entry":         rt.sigsysAddr,
		"signal_wrapper":       rt.wrapperAddr,
		"sigreturn_trampoline": rt.sigretTramp,
	}
}

// binderEnter wraps Binder.Enter but skips pushing pending state for
// syscalls whose stub context never reaches the Exit hcall.
func (rt *Runtime) binderEnter(hc *kernel.HcallCtx) error {
	return rt.Binder.Enter(hc)
}

// EntryAddr returns the fast-path entry address.
func (rt *Runtime) EntryAddr() uint64 { return rt.entryAddr }

// injectImage builds the guest-side runtime in t's address space: the
// VA-0 trampoline + entry stub, the runtime code page, and the data page.
func (rt *Runtime) injectImage(t *kernel.Task) error {
	// Trampoline page at VA 0 (zpoline fast path).
	if err := t.AS.MapFixed(0, mem.PageSize, mem.ProtRW); err != nil {
		return fmt.Errorf("lazypoline: map trampoline: %w", err)
	}
	var e isa.Enc
	e.Nop(kernel.MaxSyscallNr + 1)
	rt.entryAddr = uint64(e.Len())
	interpose.BuildEntryStub(&e, interpose.StubOpts{
		UseSUD:     true,
		SaveXState: rt.Opts.saveXState(),
		EnterHcall: rt.enterID,
		ExitHcall:  rt.exitID,
		ProtectGS:  rt.Opts.ProtectSelector,
	})
	if len(e.Buf) > mem.PageSize {
		return fmt.Errorf("lazypoline: trampoline too large (%d bytes)", len(e.Buf))
	}
	if err := t.AS.WriteAt(0, e.Buf); err != nil {
		return err
	}
	if err := t.AS.Protect(0, mem.PageSize, mem.ProtRX); err != nil {
		return err
	}

	// Runtime code page: SIGSYS stub, signal wrapper, sigreturn
	// trampoline.
	var r isa.Enc
	rt.sigsysAddr = RuntimeBase + uint64(r.Len())
	buildSigsysStub(&r, rt.slowID)
	rt.wrapperAddr = RuntimeBase + uint64(r.Len())
	buildSignalWrapper(&r, RuntimeDataBase+handlerTableOff, rt.Opts.ProtectSelector)
	rt.sigretTramp = RuntimeBase + uint64(r.Len())
	buildSigreturnTrampoline(&r, rt.Opts.ProtectSelector)
	if err := t.AS.MapFixed(RuntimeBase, mem.PageSize, mem.ProtRW); err != nil {
		return fmt.Errorf("lazypoline: map runtime page: %w", err)
	}
	if err := t.AS.WriteAt(RuntimeBase, r.Buf); err != nil {
		return err
	}
	if err := t.AS.Protect(RuntimeBase, mem.PageSize, mem.ProtRX); err != nil {
		return err
	}

	// Runtime data page.
	if err := t.AS.MapFixed(RuntimeDataBase, mem.PageSize, mem.ProtRW); err != nil {
		return fmt.Errorf("lazypoline: map runtime data: %w", err)
	}
	return nil
}

// initTask prepares one task: per-task gs region, SIGSYS handler
// registration, SUD enablement, selector=BLOCK.
func (rt *Runtime) initTask(t *kernel.Task, registerHandler bool) error {
	gsBase, err := t.AS.MapAnon(interpose.GSSize, mem.ProtRW)
	if err != nil {
		return fmt.Errorf("lazypoline: map gs region: %w", err)
	}
	t.CPU.GSBase = gsBase
	if err := interpose.InitGSRegion(t, gsBase); err != nil {
		return err
	}
	if registerHandler {
		// The runtime's own SIGSYS handler (not wrapped).
		t.Sig.Set(kernel.SIGSYS, kernel.SigAction{Handler: rt.sigsysAddr})
	}
	if rt.Opts.ProtectSelector {
		// §VI: isolate the gs region behind a protection key; the
		// application runs with writes to it disabled.
		if err := t.AS.SetPkey(gsBase, interpose.GSSize, interpose.GSPkey); err != nil {
			return err
		}
		t.CPU.PKRU = mem.PkeyWriteDisableBit(interpose.GSPkey)
		t.AS.SetActivePKRU(t.CPU.PKRU)
	}
	// Selector-only SUD: no allowlisted range whatsoever.
	if err := rt.K.ConfigSUD(t, kernel.SUDConfig{
		Enabled:      true,
		SelectorAddr: gsBase + interpose.GSSelector,
	}); err != nil {
		return err
	}
	// Arm interposition: selector = BLOCK.
	return t.AS.WriteForce(gsBase+interpose.GSSelector, []byte{kernel.SyscallDispatchFilterBlock})
}

// rewriteAllStatic is the optional up-front pass (microbench steady
// state): scan and rewrite every executable region except the runtime's
// own pages and the vdso. The selector is parked at ALLOW for the
// duration so the pass's own mprotect syscalls dispatch.
func (rt *Runtime) rewriteAllStatic(t *kernel.Task) error {
	selAddr := t.CPU.GSBase + interpose.GSSelector
	if err := t.AS.WriteForce(selAddr, []byte{kernel.SyscallDispatchFilterAllow}); err != nil {
		return err
	}
	defer func() {
		_ = t.AS.WriteForce(selAddr, []byte{kernel.SyscallDispatchFilterBlock})
	}()
	for _, r := range t.AS.Regions() {
		if r.Prot&mem.ProtExec == 0 {
			continue
		}
		if r.Addr == 0 || r.Addr == kernel.VdsoBase || r.Addr == RuntimeBase {
			continue
		}
		code := make([]byte, r.Length)
		if err := t.AS.ReadForce(r.Addr, code); err != nil {
			return err
		}
		for _, site := range zpoline.FindSyscallSites(code, r.Addr, zpoline.ScanLinear) {
			if err := rt.rewriteSite(t, site); err != nil {
				return err
			}
		}
	}
	return nil
}
