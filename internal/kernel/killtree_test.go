package kernel

import (
	"errors"
	"testing"

	"lazypoline/internal/netstack"
)

// forkedListener: the parent forks and parks in wait4; the child binds
// port 8080, listens, and accept-loops forever, holding every accepted
// connection open. The shape of a pre-forked server master + worker.
const forkedListener = `
.equ SYS_socket 41
.equ SYS_accept 43
.equ SYS_bind 49
.equ SYS_listen 50
_start:
	mov64 rax, SYS_fork
	syscall
	cmpi rax, 0
	jz child
	mov64 rdi, -1
	mov64 rsi, 0
	mov64 rdx, 0
	mov64 rax, SYS_wait4
	syscall
	mov64 rdi, 0
	mov64 rax, SYS_exit
	syscall
child:
	mov64 rax, SYS_socket
	mov64 rdi, 2
	mov64 rsi, 1
	syscall
	mov rbx, rax
	mov64 rax, SYS_bind
	mov rdi, rbx
	lea rsi, sa
	mov64 rdx, 8
	syscall
	mov64 rax, SYS_listen
	mov rdi, rbx
	mov64 rsi, 8
	syscall
acceptloop:
	mov64 rax, SYS_accept
	mov rdi, rbx
	mov64 rsi, 0
	mov64 rdx, 0
	syscall
	jmp acceptloop
.align 8
sa:
	.byte 2, 0, 0x1f, 0x90   ; port 8080
	.byte 0, 0, 0, 0
`

// TestKillTreeUnbindsListeners: killing a process tree must release the
// victims' file tables — the child's listener unbinds (later dials are
// refused, the crashed-backend signal the fleet health checker relies
// on) and its accepted connections die (peers see EOF).
func TestKillTreeUnbindsListeners(t *testing.T) {
	k := New(Config{})
	master := buildTask(t, k, forkedListener)

	var ep *netstack.Endpoint
	for i := 0; i < 100 && ep == nil; i++ {
		k.RunSlice(100_000)
		if e, err := k.Net.Connect(8080); err == nil {
			ep = e
		}
	}
	if ep == nil {
		t.Fatal("forked child never started listening")
	}
	k.RunSlice(200_000) // let the child accept the connection

	k.KillTree(master)
	for _, task := range k.Tasks() {
		if task.Alive() {
			t.Errorf("task %d (%s) still alive after KillTree", task.ID, task.Name)
		}
	}
	if _, err := k.Net.Connect(8080); !errors.Is(err, netstack.ErrConnRefused) {
		t.Errorf("dial after KillTree: %v, want ECONNREFUSED", err)
	}
	buf := make([]byte, 8)
	if n, err := ep.Read(buf); !(n == 0 && err == nil) &&
		!errors.Is(err, netstack.ErrClosed) && !errors.Is(err, netstack.ErrReset) {
		t.Errorf("read on connection to killed tree: %d, %v (want EOF)", n, err)
	}
	// Idempotent: a second kill of an already-dead tree is a no-op.
	k.KillTree(master)
}

// TestKillTreeSparesUnrelatedTasks: only the target tree dies.
func TestKillTreeSparesUnrelatedTasks(t *testing.T) {
	k := New(Config{})
	victim := buildTask(t, k, forkedListener)
	bystander := buildTask(t, k, `
	_start:
		mov64 rax, SYS_getpid
		syscall
		jmp _start
	`)
	for i := 0; i < 100; i++ {
		k.RunSlice(100_000)
		if _, err := k.Net.Connect(8080); err == nil {
			break
		}
	}
	k.KillTree(victim)
	if !bystander.Alive() {
		t.Error("KillTree killed an unrelated task")
	}
	if victim.Alive() {
		t.Error("KillTree target still alive")
	}
}

// TestAdvanceClockIdleTick: AdvanceClock moves virtual time without
// running any task — the open-loop driver's idle tick.
func TestAdvanceClockIdleTick(t *testing.T) {
	k := New(Config{})
	before := k.Now()
	k.AdvanceClock(12_345)
	if got := k.Now(); got != before+12_345 {
		t.Fatalf("Now() = %d after AdvanceClock, want %d", got, before+12_345)
	}
}
